open Types
module Cx = Cxnum.Cx
module Ct = Cxnum.Cx_table
module M = Obs.Metrics

(* observability: unique-table traffic, node allocations and peak live node
   counts, aggregated over every package in the process.  A "hit" is a
   lookup that found an existing node (structural sharing paying off); an
   "insert" is a fresh allocation. *)
let m_vuniq_hits = M.counter "dd.unique.vec.hits"
let m_vuniq_inserts = M.counter "dd.unique.vec.inserts"
let m_muniq_hits = M.counter "dd.unique.mat.hits"
let m_muniq_inserts = M.counter "dd.unique.mat.inserts"
let m_gc_runs = M.counter "dd.gc.runs"
let m_gc_auto = M.counter "dd.gc.auto"
let m_gc_swept_nodes = M.counter "dd.gc.swept.nodes"
let m_gc_swept_weights = M.counter "dd.gc.swept.weights"
let g_vnodes_peak = M.gauge "dd.unique.vec.peak"
let g_mnodes_peak = M.gauge "dd.unique.mat.peak"
let m_pkg_created = M.counter "dd.pkg.created"

(* Per-cache capacities, GC config and the domain-ownership machinery are
   shared across backends and live in {!Backend}; re-exported here so the
   historical [Dd.Pkg.config] record syntax keeps working. *)
type caps = Backend.caps =
  { vadd : int
  ; madd : int
  ; mv : int
  ; mm : int
  ; ip : int
  ; adj : int
  ; kernel : int
  }

let caps_unbounded = Backend.caps_unbounded
let caps_uniform = Backend.caps_uniform

exception Cross_domain_use = Backend.Cross_domain_use

let set_domain_guards = Backend.set_domain_guards
let self_id () = (Domain.self () :> int)

type config = Backend.config =
  { caps : caps
  ; gc_threshold : int option
  }

let default_config = Backend.default_config

(* Registered roots.  A root is a mutable cell the package knows about:
   [compact] treats the edges held in live roots (plus the cached identity
   chain) as the complete reachability frontier. *)
type vroot =
  { vr_id : int
  ; mutable vr_edge : vedge
  }

type mroot =
  { mr_id : int
  ; mutable mr_edge : medge
  }

(* Hash-consed gate signatures: the small per-gate description the direct
   application kernels ({!Mat.apply_gate} and friends) key their caches on.
   Interning gives every distinct (u, controls, target) combination one
   small integer id, so a kernel cache key is a handful of ints instead of
   a weight array.  [gs_u] stores the raw complex entries (not interned
   weights), so a signature held across a {!compact} stays usable: ids are
   only ever compared against entries written after the same sweep (the
   kernel caches are cleared by [compact], and [gs_id] is monotonic). *)
type gate_sig =
  { gs_id : int
  ; gs_u : Cx.t array (* row-major 2x2 entries; [||] for a swap *)
  ; gs_swap : bool
  ; gs_target : int (* unary target; for a swap, the higher wire *)
  ; gs_target2 : int (* swap: the lower wire; [-1] otherwise *)
  ; gs_hi : int (* highest involved qubit (controls included) *)
  ; gs_lo : int (* lowest involved qubit *)
  ; gs_cmin : int (* lowest control below the target; [max_int] if none *)
  ; gs_control_at : bool option array (* indexed by qubit, length gs_hi+1 *)
  }

(* intern key: tag (0 unary / 1 swap), sorted controls, u weight ids,
   target, second target *)
type sig_key = int * (int * bool) list * int list * int * int

(* Kernel cache keys: [(sid lsl 3) lor opcode] packed into the head slot
   plus up to three operand ids, where the opcode distinguishes the
   kernel's internal recursions (pass-through descent, the
   controls-below combine, swap block moves) so one cache serves them
   all.  Unused positions are padded with [-2] (node ids are >= -1; the
   combine uses [-3] to mark a zero operand).  Values are edge pairs:
   the combine and swap-move recursions emit both result slices of one
   shared descent, and the single-valued descent entries just duplicate
   their edge. *)
type kkey = int * int * int * int

type t =
  { ctab : Ct.t
  ; vtab : (vkey, vnode) Hashtbl.t
  ; mtab : (mkey, mnode) Hashtbl.t
  ; mutable vnext : int
  ; mutable mnext : int
  ; mutable idents : medge array (* idents.(i) = identity on i qubits, i < nidents *)
  ; mutable nidents : int
  ; vadd : (int * int * int, vedge) Cache.t
  ; madd : (int * int * int, medge) Cache.t
  ; mv : (int * int, vedge) Cache.t
  ; mm : (int * int, medge) Cache.t
  ; ip : (int * int, Cx.t) Cache.t
  ; adj : (int, medge) Cache.t
  ; kv : (kkey, vedge * vedge) Cache.t (* vector gate-kernel cache *)
  ; km : (kkey, medge * medge) Cache.t (* matrix gate-kernel cache *)
  ; sigs : (sig_key, gate_sig) Hashtbl.t
  ; mutable sig_next : int
  ; vroots : (int, vroot) Hashtbl.t
  ; mroots : (int, mroot) Hashtbl.t
  ; mutable root_next : int
  ; gc_threshold : int option
  ; mutable gc_baseline : int (* live nodes right after the last sweep *)
  ; owner : int (* id of the domain that created the package *)
  }

let guard p =
  if Backend.guards_enabled () then begin
    let d = self_id () in
    if d <> p.owner then
      raise
        (Cross_domain_use
           (Printf.sprintf
              "Dd.Pkg: package owned by domain %d used from domain %d" p.owner d))
  end

let create ?(tol = 1e-10) ?(config = default_config) () =
  M.incr m_pkg_created;
  let caps = config.caps in
  { ctab = Ct.create ~tol ()
  ; vtab = Hashtbl.create 4096
  ; mtab = Hashtbl.create 4096
  ; vnext = 0
  ; mnext = 0
  ; idents = [||]
  ; nidents = 0
  ; vadd = Cache.create ~capacity:caps.vadd "vadd"
  ; madd = Cache.create ~capacity:caps.madd "madd"
  ; mv = Cache.create ~capacity:caps.mv "mv"
  ; mm = Cache.create ~capacity:caps.mm "mm"
  ; ip = Cache.create ~capacity:caps.ip "ip"
  ; adj = Cache.create ~capacity:caps.adj "adj"
    (* both kernel caches publish under the same [dd.kernel.*] names:
       {!Obs.Metrics.register} de-duplicates, so their counters sum *)
  ; kv = Cache.create ~capacity:caps.kernel ~prefix:"dd." "kernel"
  ; km = Cache.create ~capacity:caps.kernel ~prefix:"dd." "kernel"
  ; sigs = Hashtbl.create 64
  ; sig_next = 0
  ; vroots = Hashtbl.create 16
  ; mroots = Hashtbl.create 16
  ; root_next = 0
  ; gc_threshold = config.gc_threshold
  ; gc_baseline = 0
  ; owner = self_id ()
  }

let tol p = Ct.tol p.ctab
let ctab p = p.ctab
let weight p z =
  guard p;
  Ct.lookup p.ctab z
let w_zero = Ct.zero
let w_one = Ct.one
let vzero = { vw = Ct.zero; vt = None }
let mzero = { mw = Ct.zero; mt = None }

let vterminal p z =
  let w = weight p z in
  if Ct.is_zero w then vzero else { vw = w; vt = None }

let mterminal p z =
  let w = weight p z in
  if Ct.is_zero w then mzero else { mw = w; mt = None }

let wcx (w : weight) = Ct.to_cx w

(* Unique-table lookups.  Successor edges are already canonical, so a node is
   identified by its variable, weight ids and target ids. *)

let hashcons_vnode p var e0 e1 =
  let key = vkey_of var e0 e1 in
  match Hashtbl.find_opt p.vtab key with
  | Some n ->
    M.incr m_vuniq_hits;
    n
  | None ->
    let n = { vid = p.vnext; vvar = var; v0 = e0; v1 = e1 } in
    p.vnext <- p.vnext + 1;
    Hashtbl.add p.vtab key n;
    M.incr m_vuniq_inserts;
    M.observe g_vnodes_peak (Hashtbl.length p.vtab);
    n

let hashcons_mnode p var e00 e01 e10 e11 =
  let key = mkey_of var e00 e01 e10 e11 in
  match Hashtbl.find_opt p.mtab key with
  | Some n ->
    M.incr m_muniq_hits;
    n
  | None ->
    let n = { mid = p.mnext; mvar = var; m00 = e00; m01 = e01; m10 = e10; m11 = e11 } in
    p.mnext <- p.mnext + 1;
    Hashtbl.add p.mtab key n;
    M.incr m_muniq_inserts;
    M.observe g_mnodes_peak (Hashtbl.length p.mtab);
    n

(* Vector normalization: divide successor weights by their 2-norm and by the
   phase of the first non-zero weight.  The resulting node has unit-norm
   weights with the first non-zero one real positive, which makes node
   identity equivalent to sub-state identity and gives weights a direct
   probabilistic reading. *)
let make_vnode p var e0 e1 =
  guard p;
  if vedge_is_zero e0 && vedge_is_zero e1 then vzero
  else begin
    let w0 = wcx e0.vw and w1 = wcx e1.vw in
    let norm = Float.sqrt (Cx.abs2 w0 +. Cx.abs2 w1) in
    (* the phase reference must be a weight that survives normalization, so
       pick w0 only when it is non-negligible at the node's scale *)
    let lead = if Cx.abs w0 > tol p *. norm then w0 else w1 in
    let phase = Cx.scale (1.0 /. Cx.abs lead) lead in
    let factor = Cx.scale norm phase in
    let renorm w e =
      if vedge_is_zero e then vzero
      else begin
        let w' = Cx.div w factor in
        (* normalized weights live at scale 1, so an absolute test cleans up
           relative cancellation noise *)
        if Cx.abs w' <= tol p then vzero else { vw = weight p w'; vt = e.vt }
      end
    in
    let e0' = renorm w0 e0 and e1' = renorm w1 e1 in
    if vedge_is_zero e0' && vedge_is_zero e1' then vzero
    else begin
      let n = hashcons_vnode p var e0' e1' in
      { vw = weight p factor; vt = Some n }
    end
  end

(* Matrix normalization: divide by the largest-magnitude weight, lowest index
   winning near-ties, so the dominant weight becomes exactly 1. *)
let make_mnode p var e00 e01 e10 e11 =
  guard p;
  let edges = [| e00; e01; e10; e11 |] in
  let mags = Array.map (fun e -> Cx.abs (wcx e.mw)) edges in
  let mmax = Array.fold_left Float.max 0.0 mags in
  if Array.for_all medge_is_zero edges then mzero
  else if not (Float.is_finite mmax) then
    invalid_arg "Dd.Pkg.make_mnode: non-finite edge weight (check gate angles)"
  else begin
    (* ties on the leading magnitude are broken towards the lowest index,
       with a relative margin so drift cannot flip the choice *)
    let rec lead_index k =
      if mags.(k) >= mmax *. (1.0 -. 1e-9) then k else lead_index (k + 1)
    in
    let k = lead_index 0 in
    let factor = wcx edges.(k).mw in
    let renorm idx e =
      if medge_is_zero e then mzero
      else if idx = k then { mw = w_one; mt = e.mt }
      else begin
        let w' = Cx.div (wcx e.mw) factor in
        if Cx.abs w' <= tol p then mzero else { mw = weight p w'; mt = e.mt }
      end
    in
    let n =
      hashcons_mnode p var (renorm 0 e00) (renorm 1 e01) (renorm 2 e10) (renorm 3 e11)
    in
    { mw = weight p factor; mt = Some n }
  end

let vscale p z e =
  if vedge_is_zero e then vzero
  else begin
    let w = weight p (Cx.mul z (wcx e.vw)) in
    if Ct.is_zero w then vzero else { vw = w; vt = e.vt }
  end

let mscale p z e =
  if medge_is_zero e then mzero
  else begin
    let w = weight p (Cx.mul z (wcx e.mw)) in
    if Ct.is_zero w then mzero else { mw = w; mt = e.mt }
  end

(* The memoized identity chain lives in a growable array indexed by qubit
   count, so the lookup is O(1) — it sits on the kernel fast path for every
   positive/negative control branch. *)
let ident p n =
  if n < p.nidents then p.idents.(n)
  else begin
    if n >= Array.length p.idents then begin
      let cap = max 16 (max (n + 1) (2 * Array.length p.idents)) in
      let grown = Array.make cap mzero in
      Array.blit p.idents 0 grown 0 p.nidents;
      p.idents <- grown
    end;
    for i = p.nidents to n do
      p.idents.(i) <-
        (if i = 0 then { mw = w_one; mt = None }
         else begin
           let below = p.idents.(i - 1) in
           make_mnode p (i - 1) below mzero mzero below
         end)
    done;
    p.nidents <- n + 1;
    p.idents.(n)
  end

let basis_state p n bits =
  let rec build q acc =
    if q = n then acc
    else begin
      let acc' =
        if bits q then make_vnode p q vzero acc else make_vnode p q acc vzero
      in
      build (q + 1) acc'
    end
  in
  build 0 { vw = w_one; vt = None }

let zero_state p n = basis_state p n (fun _ -> false)

let product_state p amps =
  let n = Array.length amps in
  let rec build q acc =
    if q = n then acc
    else begin
      let a, b = amps.(q) in
      build (q + 1) (make_vnode p q (vscale p a acc) (vscale p b acc))
    end
  in
  build 0 { vw = w_one; vt = None }

(* Controlled-gate construction, bottom-up (cf. MQT's makeGateDD).  Each of
   the four entries of [u] starts as a terminal edge; levels below the target
   extend it with identity blocks, except at control levels where the
   inactive branch must be the identity *only on the diagonal entries*.
   Above the target a single edge remains and controls select between it and
   the identity of everything below. *)
let gate p ~n ~controls ~target u =
  assert (Array.length u = 4);
  assert (0 <= target && target < n);
  let control_at = Array.make n None in
  let set_control (q, pos) =
    assert (q <> target && 0 <= q && q < n);
    control_at.(q) <- Some pos
  in
  List.iter set_control controls;
  let entries = Array.map (fun z -> mterminal p z) u in
  for q = 0 to target - 1 do
    match control_at.(q) with
    | None ->
      for idx = 0 to 3 do
        let e = entries.(idx) in
        entries.(idx) <- make_mnode p q e mzero mzero e
      done
    | Some pos ->
      for idx = 0 to 3 do
        let diag = if idx = 0 || idx = 3 then ident p q else mzero in
        let e = entries.(idx) in
        entries.(idx) <-
          (if pos then make_mnode p q diag mzero mzero e
           else make_mnode p q e mzero mzero diag)
      done
  done;
  let at_target =
    make_mnode p target entries.(0) entries.(1) entries.(2) entries.(3)
  in
  let rec extend q acc =
    if q = n then acc
    else begin
      let acc' =
        match control_at.(q) with
        | None -> make_mnode p q acc mzero mzero acc
        | Some pos ->
          let below = ident p q in
          if pos then make_mnode p q below mzero mzero acc
          else make_mnode p q acc mzero mzero below
      in
      extend (q + 1) acc'
    end
  in
  extend (target + 1) at_target

(* -- gate signatures --------------------------------------------------- *)

(* The process-wide blueprint tier (derived, package-independent signature
   parts shared across concurrent packages of any backend) lives in
   {!Backend.shared_blueprint}. *)

let build_sig p ~key ~u ~swap ~controls ~target ~target2 =
  let involved = target :: (if swap then [ target2 ] else List.map fst controls) in
  let hi = List.fold_left max target involved in
  let lo = List.fold_left min target involved in
  let cmin =
    List.fold_left
      (fun acc (q, _) -> if q < target then min acc q else acc)
      max_int controls
  in
  let control_at = Array.make (hi + 1) None in
  List.iter (fun (q, pos) -> control_at.(q) <- Some pos) controls;
  let s =
    { gs_id = p.sig_next
    ; gs_u = u
    ; gs_swap = swap
    ; gs_target = target
    ; gs_target2 = target2
    ; gs_hi = hi
    ; gs_lo = lo
    ; gs_cmin = cmin
    ; gs_control_at = control_at
    }
  in
  p.sig_next <- p.sig_next + 1;
  Hashtbl.replace p.sigs key s;
  s

let gate_sig p ~controls ~target u =
  guard p;
  if Array.length u <> 4 then invalid_arg "Dd.Pkg.gate_sig: u must have 4 entries";
  if List.exists (fun (q, _) -> q = target || q < 0) controls || target < 0 then
    invalid_arg "Dd.Pkg.gate_sig: bad control/target wires";
  let controls = List.sort_uniq compare controls in
  (* key on interned weight ids so structurally equal matrices share a
     signature even when built from fresh floats *)
  let uw = Array.to_list (Array.map (fun z -> (weight p z).id) u) in
  let key = (0, controls, uw, target, -1) in
  match Hashtbl.find_opt p.sigs key with
  | Some s -> s
  | None ->
    let bp = Backend.shared_blueprint ~controls ~target u in
    let s =
      { gs_id = p.sig_next
      ; gs_u = bp.Backend.b_u
      ; gs_swap = false
      ; gs_target = target
      ; gs_target2 = -1
      ; gs_hi = bp.Backend.b_hi
      ; gs_lo = bp.Backend.b_lo
      ; gs_cmin = bp.Backend.b_cmin
      ; gs_control_at = bp.Backend.b_control_at
      }
    in
    p.sig_next <- p.sig_next + 1;
    Hashtbl.replace p.sigs key s;
    s

let swap_sig p a b =
  guard p;
  if a = b || a < 0 || b < 0 then invalid_arg "Dd.Pkg.swap_sig: bad wires";
  let hi = max a b and lo = min a b in
  let key = (1, [], [], hi, lo) in
  match Hashtbl.find_opt p.sigs key with
  | Some s -> s
  | None -> build_sig p ~key ~u:[||] ~swap:true ~controls:[] ~target:hi ~target2:lo

let sig_control_at (s : gate_sig) q =
  if q <= s.gs_hi then s.gs_control_at.(q) else None

let vadd_cache p = p.vadd
let madd_cache p = p.madd
let mv_cache p = p.mv
let mm_cache p = p.mm
let ip_cache p = p.ip
let adj_cache p = p.adj
let kernel_v_cache p = p.kv
let kernel_m_cache p = p.km

let clear_caches p =
  Cache.clear p.vadd;
  Cache.clear p.madd;
  Cache.clear p.mv;
  Cache.clear p.mm;
  Cache.clear p.ip;
  Cache.clear p.adj;
  Cache.clear p.kv;
  Cache.clear p.km

(* -- root registry ---------------------------------------------------- *)

let root_v p e =
  guard p;
  let r = { vr_id = p.root_next; vr_edge = e } in
  p.root_next <- p.root_next + 1;
  Hashtbl.replace p.vroots r.vr_id r;
  r

let root_m p e =
  guard p;
  let r = { mr_id = p.root_next; mr_edge = e } in
  p.root_next <- p.root_next + 1;
  Hashtbl.replace p.mroots r.mr_id r;
  r

let vroot_edge r = r.vr_edge
let mroot_edge r = r.mr_edge
let set_vroot r e = r.vr_edge <- e
let set_mroot r e = r.mr_edge <- e
let release_v p r = Hashtbl.remove p.vroots r.vr_id
let release_m p r = Hashtbl.remove p.mroots r.mr_id

let with_root_v p e f =
  let r = root_v p e in
  Fun.protect ~finally:(fun () -> release_v p r) (fun () -> f r)

let with_root_m p e f =
  let r = root_m p e in
  Fun.protect ~finally:(fun () -> release_m p r) (fun () -> f r)

let live_roots p = Hashtbl.length p.vroots + Hashtbl.length p.mroots
let live_nodes p = Hashtbl.length p.vtab + Hashtbl.length p.mtab

(* -- compaction ------------------------------------------------------- *)

(* Sweep everything unreachable from the registered roots (plus the cached
   identity chain): operation caches are dropped, the unique tables are
   rebuilt from the reachable nodes, and the complex table is re-seeded
   with exactly the weights those nodes (and the root edges themselves)
   carry.  Nodes and weights held by callers but not reachable from a root
   must no longer be used with this package: they stay structurally valid
   OCaml values, but lose canonicity (a later structurally-equal build
   yields a different physical node). *)
let compact p =
  guard p;
  M.incr m_gc_runs;
  let nodes_before = live_nodes p and weights_before = Ct.size p.ctab in
  clear_caches p;
  Hashtbl.reset p.vtab;
  Hashtbl.reset p.mtab;
  let vseen = Hashtbl.create 256 and mseen = Hashtbl.create 256 in
  let weights : (int, weight) Hashtbl.t = Hashtbl.create 256 in
  let keep_w (w : weight) = if w.id > 1 then Hashtbl.replace weights w.id w in
  let rec revisit_v = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem vseen n.vid) then begin
        Hashtbl.add vseen n.vid ();
        Hashtbl.replace p.vtab (vkey_of n.vvar n.v0 n.v1) n;
        keep_w n.v0.vw;
        keep_w n.v1.vw;
        if not (vedge_is_zero n.v0) then revisit_v n.v0.vt;
        if not (vedge_is_zero n.v1) then revisit_v n.v1.vt
      end
  in
  let rec revisit_m = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem mseen n.mid) then begin
        Hashtbl.add mseen n.mid ();
        Hashtbl.replace p.mtab (mkey_of n.mvar n.m00 n.m01 n.m10 n.m11) n;
        let follow (e : medge) =
          keep_w e.mw;
          if not (medge_is_zero e) then revisit_m e.mt
        in
        follow n.m00;
        follow n.m01;
        follow n.m10;
        follow n.m11
      end
  in
  let root_vedge (e : vedge) =
    keep_w e.vw;
    if not (vedge_is_zero e) then revisit_v e.vt
  in
  let root_medge (e : medge) =
    keep_w e.mw;
    if not (medge_is_zero e) then revisit_m e.mt
  in
  Hashtbl.iter (fun _ r -> root_vedge r.vr_edge) p.vroots;
  Hashtbl.iter (fun _ r -> root_medge r.mr_edge) p.mroots;
  (* the cached identity chain must stay valid *)
  for i = 0 to p.nidents - 1 do
    root_medge p.idents.(i)
  done;
  (* gate signatures key on interned weight ids, which the rebuild below
     invalidates; dropping them means the next application re-interns
     (monotonic [gs_id]s keep cleared-cache keys collision-free) *)
  Hashtbl.reset p.sigs;
  Ct.rebuild p.ctab (Hashtbl.fold (fun _ w acc -> w :: acc) weights []);
  p.gc_baseline <- live_nodes p;
  M.add m_gc_swept_nodes (nodes_before - live_nodes p);
  M.add m_gc_swept_weights (max 0 (weights_before - Ct.size p.ctab))

(* Safepoint hook: a domain-local callback fired on every [checkpoint].
   Checkpoints are the places where consumers declare "everything live is
   rooted and no DD operation is in flight", which makes them the natural
   cancellation points for cooperative job control — the batch engine
   installs a hook that raises on deadline or node-budget overrun, and the
   exception unwinds through [Fun.protect]-style root brackets without
   corrupting any package state. *)
let safepoint_hook : (t -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_safepoint_hook h = Domain.DLS.set safepoint_hook h

(* Growth policy: a cheap check consumers place at safepoints (between DD
   operations, when everything live is rooted).  Compaction must never run
   in the middle of a {!Vec}/{!Mat} operation — intermediate edges held in
   OCaml locals are not rooted — so the package never compacts on its own;
   it only does so here, when a consumer says it is safe. *)
let checkpoint p =
  (match Domain.DLS.get safepoint_hook with None -> () | Some f -> f p);
  match p.gc_threshold with
  | Some threshold when live_nodes p - p.gc_baseline > threshold ->
    M.incr m_gc_auto;
    compact p
  | _ -> ()

type stats = Backend.stats =
  { vector_nodes : int
  ; matrix_nodes : int
  ; weights : int
  }

let stats p =
  { vector_nodes = Hashtbl.length p.vtab
  ; matrix_nodes = Hashtbl.length p.mtab
  ; weights = Ct.size p.ctab
  }
