(* Runtime backend registry: lets the CLI, the batch engine and the bench
   driver pick a {!Backend.S} implementation by name without being
   functorized themselves.  Both built-in backends register at module
   initialization; [register] is exposed so an embedding application can
   add its own. *)

let tbl : (string, (module Backend.S)) Hashtbl.t = Hashtbl.create 8

let register (module B : Backend.S) = Hashtbl.replace tbl B.name (module B : Backend.S)
let find name = Hashtbl.find_opt tbl name
let names () = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
let default = "classic"

let () =
  register (module Classic);
  register (module Packed)
