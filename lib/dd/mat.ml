open Types
module Cx = Cxnum.Cx
module Ct = Cxnum.Cx_table

let wcx (w : weight) = Ct.to_cx w

(* compute-cache hit/miss/eviction counters live in {!Cache} *)

(* Same ratio-normalized caching scheme as Vec.add. *)
let rec add p (a : medge) (b : medge) =
  if medge_is_zero a then b
  else if medge_is_zero b then a
  else begin
    let a, b = if mnode_id a.mt <= mnode_id b.mt then (a, b) else (b, a) in
    let wa = wcx a.mw and wb = wcx b.mw in
    match (a.mt, b.mt) with
    | None, None ->
      (* cancellation residue is tiny relative to the operands, not in
         absolute terms — test at the operands' scale *)
      let s = Cx.add wa wb in
      if Cx.abs s <= Pkg.tol p *. Float.max (Cx.abs wa) (Cx.abs wb) then Pkg.mzero
      else Pkg.mterminal p s
    | Some na, Some nb ->
      let ratio = Pkg.weight p (Cx.div wb wa) in
      let key = (na.mid, nb.mid, ratio.id) in
      let cache = Pkg.madd_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let rb = wcx ratio in
          let sum ea eb = add p ea (Pkg.mscale p rb eb) in
          let e =
            Pkg.make_mnode p na.mvar (sum na.m00 nb.m00) (sum na.m01 nb.m01)
              (sum na.m10 nb.m10) (sum na.m11 nb.m11)
          in
          Cache.add cache key e;
          e
      in
      Pkg.mscale p wa inner
    | _ -> invalid_arg "Mat.add: operands of different dimension"
  end

(* Matrix-vector product: the inner product over weight-1 node pairs only
   depends on the node identities, so it is cached on (matrix id, vector id)
   and scaled by the edge weights afterwards. *)
let rec apply p (m : medge) (v : vedge) =
  if medge_is_zero m || vedge_is_zero v then Pkg.vzero
  else begin
    let w = Cx.mul (wcx m.mw) (wcx v.vw) in
    match (m.mt, v.vt) with
    | None, None -> Pkg.vterminal p w
    | Some mn, Some vn ->
      let key = (mn.mid, vn.vid) in
      let cache = Pkg.mv_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let r0 = Vec.add p (apply p mn.m00 vn.v0) (apply p mn.m01 vn.v1) in
          let r1 = Vec.add p (apply p mn.m10 vn.v0) (apply p mn.m11 vn.v1) in
          let e = Pkg.make_vnode p mn.mvar r0 r1 in
          Cache.add cache key e;
          e
      in
      Pkg.vscale p w inner
    | _ -> invalid_arg "Mat.apply: operands of different dimension"
  end

let rec mul p (a : medge) (b : medge) =
  if medge_is_zero a || medge_is_zero b then Pkg.mzero
  else begin
    let w = Cx.mul (wcx a.mw) (wcx b.mw) in
    match (a.mt, b.mt) with
    | None, None -> Pkg.mterminal p w
    | Some na, Some nb ->
      let key = (na.mid, nb.mid) in
      let cache = Pkg.mm_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let entry i j =
            (* C_ij = A_i0 * B_0j + A_i1 * B_1j *)
            let sel n i j =
              match (i, j) with
              | 0, 0 -> n.m00
              | 0, 1 -> n.m01
              | 1, 0 -> n.m10
              | _ -> n.m11
            in
            add p (mul p (sel na i 0) (sel nb 0 j)) (mul p (sel na i 1) (sel nb 1 j))
          in
          let e =
            Pkg.make_mnode p na.mvar (entry 0 0) (entry 0 1) (entry 1 0) (entry 1 1)
          in
          Cache.add cache key e;
          e
      in
      Pkg.mscale p w inner
    | _ -> invalid_arg "Mat.mul: operands of different dimension"
  end

let rec adjoint p (a : medge) =
  if medge_is_zero a then Pkg.mzero
  else begin
    let w = Cx.conj (wcx a.mw) in
    match a.mt with
    | None -> Pkg.mterminal p w
    | Some n ->
      let cache = Pkg.adj_cache p in
      let inner =
        match Cache.find cache n.mid with
        | Some e -> e
        | None ->
          let e =
            Pkg.make_mnode p n.mvar (adjoint p n.m00) (adjoint p n.m10)
              (adjoint p n.m01) (adjoint p n.m11)
          in
          Cache.add cache n.mid e;
          e
      in
      Pkg.mscale p w inner
  end

let trace _p (a : medge) ~n =
  let memo : (int, Cx.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go (e : medge) levels =
    if medge_is_zero e then Cx.zero
    else begin
      match e.mt with
      | None -> wcx e.mw
      | Some node ->
        let sub =
          match Hashtbl.find_opt memo node.mid with
          | Some z -> z
          | None ->
            let z = Cx.add (go node.m00 (levels - 1)) (go node.m11 (levels - 1)) in
            Hashtbl.add memo node.mid z;
            z
        in
        Cx.mul (wcx e.mw) sub
    end
  in
  go a n

let entry _p (a : medge) ~n ~row ~col =
  let rec go (e : medge) q acc =
    if medge_is_zero e then Cx.zero
    else begin
      let acc = Cx.mul acc (wcx e.mw) in
      match e.mt with
      | None -> acc
      | Some node ->
        let i = (row lsr (q - 1)) land 1 and j = (col lsr (q - 1)) land 1 in
        let next =
          match (i, j) with
          | 0, 0 -> node.m00
          | 0, 1 -> node.m01
          | 1, 0 -> node.m10
          | _ -> node.m11
        in
        go next (q - 1) acc
    end
  in
  go a n Cx.one

let to_array p (a : medge) ~n =
  let dim = 1 lsl n in
  Array.init dim (fun row -> Array.init dim (fun col -> entry p a ~n ~row ~col))

let of_array p m =
  let dim = Array.length m in
  let rec levels k = if 1 lsl k >= dim then k else levels (k + 1) in
  let n = levels 0 in
  if 1 lsl n <> dim then invalid_arg "Mat.of_array: dimension not a power of two";
  Array.iter
    (fun row -> if Array.length row <> dim then invalid_arg "Mat.of_array: not square")
    m;
  let rec build r c len =
    if len = 1 then Pkg.mterminal p m.(r).(c)
    else begin
      let half = len / 2 in
      let rec log2 x acc = if x = 1 then acc else log2 (x / 2) (acc + 1) in
      let var = log2 len 0 - 1 in
      Pkg.make_mnode p var (build r c half)
        (build r (c + half) half)
        (build (r + half) c half)
        (build (r + half) (c + half) half)
    end
  in
  build 0 0 dim

let same_target (a : medge) (b : medge) =
  match (a.mt, b.mt) with
  | None, None -> true
  | Some na, Some nb -> na == nb
  | _ -> false

let equal p (a : medge) (b : medge) =
  same_target a b && Cx.approx_eq ~tol:(Pkg.tol p) (wcx a.mw) (wcx b.mw)

let equal_up_to_phase p (a : medge) (b : medge) =
  same_target a b
  && Float.abs (Cx.abs (wcx a.mw) -. Cx.abs (wcx b.mw)) <= Pkg.tol p

let is_identity p (a : medge) ~n ~up_to_phase =
  let id = Pkg.ident p n in
  if up_to_phase then equal_up_to_phase p a id else equal p a id

let process_fidelity p (a : medge) (b : medge) ~n =
  let prod = mul p (adjoint p a) b in
  let tr = trace p prod ~n in
  Cx.abs tr /. float_of_int (1 lsl n)

let node_count (a : medge) =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem seen n.mid) then begin
        Hashtbl.add seen n.mid ();
        let follow (e : medge) = if not (medge_is_zero e) then go e.mt in
        follow n.m00;
        follow n.m01;
        follow n.m10;
        follow n.m11
      end
  in
  if not (medge_is_zero a) then go a.mt;
  Hashtbl.length seen
