open Types
module Cx = Cxnum.Cx
module Ct = Cxnum.Cx_table

let wcx (w : weight) = Ct.to_cx w

(* compute-cache hit/miss/eviction counters live in {!Cache} *)

(* Same ratio-normalized caching scheme as Vec.add. *)
let rec add p (a : medge) (b : medge) =
  if medge_is_zero a then b
  else if medge_is_zero b then a
  else begin
    let a, b = if mnode_id a.mt <= mnode_id b.mt then (a, b) else (b, a) in
    let wa = wcx a.mw and wb = wcx b.mw in
    match (a.mt, b.mt) with
    | None, None ->
      (* cancellation residue is tiny relative to the operands, not in
         absolute terms — test at the operands' scale *)
      let s = Cx.add wa wb in
      if Cx.abs s <= Pkg.tol p *. Float.max (Cx.abs wa) (Cx.abs wb) then Pkg.mzero
      else Pkg.mterminal p s
    | Some na, Some nb ->
      let ratio = Pkg.weight p (Cx.div wb wa) in
      let key = (na.mid, nb.mid, ratio.id) in
      let cache = Pkg.madd_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let rb = wcx ratio in
          let sum ea eb = add p ea (Pkg.mscale p rb eb) in
          let e =
            Pkg.make_mnode p na.mvar (sum na.m00 nb.m00) (sum na.m01 nb.m01)
              (sum na.m10 nb.m10) (sum na.m11 nb.m11)
          in
          Cache.add cache key e;
          e
      in
      Pkg.mscale p wa inner
    | _ -> invalid_arg "Mat.add: operands of different dimension"
  end

(* Matrix-vector product: the inner product over weight-1 node pairs only
   depends on the node identities, so it is cached on (matrix id, vector id)
   and scaled by the edge weights afterwards. *)
let rec apply p (m : medge) (v : vedge) =
  if medge_is_zero m || vedge_is_zero v then Pkg.vzero
  else begin
    let w = Cx.mul (wcx m.mw) (wcx v.vw) in
    match (m.mt, v.vt) with
    | None, None -> Pkg.vterminal p w
    | Some mn, Some vn ->
      let key = (mn.mid, vn.vid) in
      let cache = Pkg.mv_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let r0 = Vec.add p (apply p mn.m00 vn.v0) (apply p mn.m01 vn.v1) in
          let r1 = Vec.add p (apply p mn.m10 vn.v0) (apply p mn.m11 vn.v1) in
          let e = Pkg.make_vnode p mn.mvar r0 r1 in
          Cache.add cache key e;
          e
      in
      Pkg.vscale p w inner
    | _ -> invalid_arg "Mat.apply: operands of different dimension"
  end

let rec mul p (a : medge) (b : medge) =
  if medge_is_zero a || medge_is_zero b then Pkg.mzero
  else begin
    let w = Cx.mul (wcx a.mw) (wcx b.mw) in
    match (a.mt, b.mt) with
    | None, None -> Pkg.mterminal p w
    | Some na, Some nb ->
      let key = (na.mid, nb.mid) in
      let cache = Pkg.mm_cache p in
      let inner =
        match Cache.find cache key with
        | Some e -> e
        | None ->
          let entry i j =
            (* C_ij = A_i0 * B_0j + A_i1 * B_1j *)
            let sel n i j =
              match (i, j) with
              | 0, 0 -> n.m00
              | 0, 1 -> n.m01
              | 1, 0 -> n.m10
              | _ -> n.m11
            in
            add p (mul p (sel na i 0) (sel nb 0 j)) (mul p (sel na i 1) (sel nb 1 j))
          in
          let e =
            Pkg.make_mnode p na.mvar (entry 0 0) (entry 0 1) (entry 1 0) (entry 1 1)
          in
          Cache.add cache key e;
          e
      in
      Pkg.mscale p w inner
    | _ -> invalid_arg "Mat.mul: operands of different dimension"
  end

let rec adjoint p (a : medge) =
  if medge_is_zero a then Pkg.mzero
  else begin
    let w = Cx.conj (wcx a.mw) in
    match a.mt with
    | None -> Pkg.mterminal p w
    | Some n ->
      let cache = Pkg.adj_cache p in
      let inner =
        match Cache.find cache n.mid with
        | Some e -> e
        | None ->
          let e =
            Pkg.make_mnode p n.mvar (adjoint p n.m00) (adjoint p n.m10)
              (adjoint p n.m01) (adjoint p n.m11)
          in
          Cache.add cache n.mid e;
          e
      in
      Pkg.mscale p w inner
  end

(* -- direct gate-application kernels ------------------------------------

   The generic path builds a full n-qubit gate DD ([Pkg.gate]) and runs the
   all-levels [mul]/[apply] recursion against it.  The kernels below skip
   both: they descend the operand only to the deepest involved qubit,
   treating every level above the gate's span as pure pass-through and
   leaving subtrees below it untouched.  Memoization lives in the package's
   two kernel caches, keyed on [((signature id lsl 4) lor opcode, operand
   ids)] where the opcode names the kernel's internal recursion:

     0 / 1    top-level descent (left / right side)
     2 / 3    controls-below combine (left rows / right columns)
     4 + put  swap block move, left rows, emitted at slot [put]
     6 + put  swap block move, right columns
     8 + r    diagonal-gate combine, left row [r]
     10 + r   diagonal-gate combine, right column [r]

   Opcode spaces never collide across unary gates and swaps because the
   signature id already distinguishes them.  Cache values are edge pairs:
   the combine and move recursions walk the same child pairs for both
   result slices, so one descent computes — and one entry stores — both;
   descent entries duplicate their single edge. *)

let m_kernel_calls = Obs.Metrics.counter "dd.kernel.calls"

let kernel_apply_sig p (s : Pkg.gate_sig) ~n (v : vedge) =
  let sid = s.Pkg.gs_id
  and target = s.Pkg.gs_target
  and hi = s.Pkg.gs_hi
  and lo = s.Pkg.gs_lo
  and cmin = s.Pkg.gs_cmin
  and u = s.Pkg.gs_u in
  if n <= hi then invalid_arg "Mat.apply_gate: gate exceeds the register";
  Obs.Metrics.incr m_kernel_calls;
  let kv = Pkg.kernel_v_cache p in
  let node q e0 e1 = Pkg.make_vnode p q e0 e1 in
  let vsub (e : vedge) =
    if vedge_is_zero e then (Pkg.vzero, Pkg.vzero)
    else
      match e.vt with
      | None -> invalid_arg "Mat.apply_gate: state too shallow"
      | Some nd ->
        if Ct.is_one e.vw then (nd.v0, nd.v1)
        else begin
          let w = wcx e.vw in
          (Pkg.vscale p w nd.v0, Pkg.vscale p w nd.v1)
        end
  in
  (* controls strictly below the target: [below2 x y] computes both row
     combinations u_{r0} P x + u_{r1} P y + (1-P) (r = 0 ? x : y) in one
     descent (P projects onto control-satisfied states — the matrix
     coefficients apply only once every deeper control has been walked
     through on its satisfied branch).  Both rows recurse over the same
     child pairs, so producing them together halves the walk and the
     [vsub] weight pushes.  The combine is bilinear, so the cache keys are
     ratio-normalized like [Vec.add]: node identities plus the interned
     ratio wy/wx, with the leading weight scaled back onto the results. *)
  let rec below2 (x : vedge) (y : vedge) =
    if vedge_is_zero x && vedge_is_zero y then (Pkg.vzero, Pkg.vzero)
    else begin
      let lead, x, y =
        if vedge_is_zero x then (wcx y.vw, x, { y with vw = Ct.one })
        else begin
          let wx = wcx x.vw in
          let ratio = Pkg.weight p (Cx.div (wcx y.vw) wx) in
          let y = if Ct.is_zero ratio then Pkg.vzero else { y with vw = ratio } in
          (wx, { x with vw = Ct.one }, y)
        end
      in
      (* [-3] marks a zero [x] — [vnode_id] cannot tell it apart from a
         weight-one terminal (both have no node) *)
      let xi = if vedge_is_zero x then -3 else vnode_id x.vt in
      let key = ((sid lsl 4) lor 2, xi, vnode_id y.vt, y.vw.id) in
      let r0, r1 =
        match Cache.find kv key with
        | Some rs -> rs
        | None ->
          let q =
            match (x.vt, y.vt) with
            | Some nd, _ | _, Some nd -> nd.vvar
            | None, None -> -1
          in
          let r0, r1 =
            if q < cmin then
              ( Vec.add p (Pkg.vscale p u.(0) x) (Pkg.vscale p u.(1) y)
              , Vec.add p (Pkg.vscale p u.(2) x) (Pkg.vscale p u.(3) y) )
            else begin
              let x0, x1 = vsub x
              and y0, y1 = vsub y in
              match Pkg.sig_control_at s q with
              | None ->
                let a0, a1 = below2 x0 y0
                and b0, b1 = below2 x1 y1 in
                (node q a0 b0, node q a1 b1)
              | Some true ->
                let b0, b1 = below2 x1 y1 in
                (node q x0 b0, node q y0 b1)
              | Some false ->
                let a0, a1 = below2 x0 y0 in
                (node q a0 x1, node q a1 y1)
            end
          in
          Cache.add kv key (r0, r1);
          (r0, r1)
      in
      (Pkg.vscale p lead r0, Pkg.vscale p lead r1)
    end
  in
  (* diagonal gate (u01 = u10 = 0) with controls below: row [row] of the
     result depends only on its own operand — the gate merely scales the
     fully control-satisfied branch by u_{rr}.  A single-operand,
     weight-factored recursion replaces the pair combine: no ratio
     interning, and cache entries per operand node instead of per operand
     pair. *)
  let diag =
    Array.length u = 4 && Cx.is_zero ~tol:0.0 u.(1) && Cx.is_zero ~tol:0.0 u.(2)
  in
  let rec below_diag ~row (e : vedge) =
    if vedge_is_zero e then Pkg.vzero
    else
      match e.vt with
      | None -> Pkg.vscale p u.(3 * row) e
      | Some nd ->
        if nd.vvar < cmin then Pkg.vscale p u.(3 * row) e
        else begin
          let key = ((sid lsl 4) lor (8 + row), nd.vid, -2, -2) in
          let inner =
            match Cache.find kv key with
            | Some (r, _) -> r
            | None ->
              let q = nd.vvar in
              let r =
                match Pkg.sig_control_at s q with
                | None ->
                  node q (below_diag ~row nd.v0) (below_diag ~row nd.v1)
                | Some true -> node q nd.v0 (below_diag ~row nd.v1)
                | Some false -> node q (below_diag ~row nd.v0) nd.v1
              in
              Cache.add kv key (r, r);
              r
          in
          Pkg.vscale p (wcx e.vw) inner
        end
  in
  let rec go (e : vedge) =
    if vedge_is_zero e then Pkg.vzero
    else
      match e.vt with
      | None -> invalid_arg "Mat.apply_gate: state too shallow"
      | Some nd ->
        let key = (sid lsl 4, nd.vid, -2, -2) in
        let inner =
          match Cache.find kv key with
          | Some (r, _) -> r
          | None ->
            let q = nd.vvar in
            let r =
              if q > target then
                match Pkg.sig_control_at s q with
                | None -> node q (go nd.v0) (go nd.v1)
                | Some true -> node q nd.v0 (go nd.v1)
                | Some false -> node q (go nd.v0) nd.v1
              else if cmin = max_int then
                node q
                  (Vec.add p
                     (Pkg.vscale p u.(0) nd.v0)
                     (Pkg.vscale p u.(1) nd.v1))
                  (Vec.add p
                     (Pkg.vscale p u.(2) nd.v0)
                     (Pkg.vscale p u.(3) nd.v1))
              else if diag then
                node q (below_diag ~row:0 nd.v0) (below_diag ~row:1 nd.v1)
              else begin
                let r0, r1 = below2 nd.v0 nd.v1 in
                node q r0 r1
              end
            in
            Cache.add kv key (r, r);
            r
        in
        Pkg.vscale p (wcx e.vw) inner
  in
  (* native swap: [move2 ~put x] selects both [b_lo] branches of the
     subtree [x] and re-emits each in the [b_lo = put] slot, zero
     elsewhere — one descent produces both [sel] slices (they walk the
     same nodes), cached separately per [sel] opcode *)
  let rec move2 ~put (e : vedge) =
    if vedge_is_zero e then (Pkg.vzero, Pkg.vzero)
    else
      match e.vt with
      | None -> invalid_arg "Mat.apply_swap: state too shallow"
      | Some nd ->
        let key = ((sid lsl 4) lor (4 + put), nd.vid, -2, -2) in
        let r0, r1 =
          match Cache.find kv key with
          | Some rs -> rs
          | None ->
            let q = nd.vvar in
            let r0, r1 =
              if q > lo then begin
                let a0, a1 = move2 ~put nd.v0
                and b0, b1 = move2 ~put nd.v1 in
                (node q a0 b0, node q a1 b1)
              end
              else begin
                let emit c =
                  if put = 0 then node q c Pkg.vzero else node q Pkg.vzero c
                in
                (emit nd.v0, emit nd.v1)
              end
            in
            Cache.add kv key (r0, r1);
            (r0, r1)
        in
        let w = wcx e.vw in
        (Pkg.vscale p w r0, Pkg.vscale p w r1)
  in
  let rec swap_go (e : vedge) =
    if vedge_is_zero e then Pkg.vzero
    else
      match e.vt with
      | None -> invalid_arg "Mat.apply_swap: state too shallow"
      | Some nd ->
        let key = (sid lsl 4, nd.vid, -2, -2) in
        let inner =
          match Cache.find kv key with
          | Some (r, _) -> r
          | None ->
            let q = nd.vvar in
            let r =
              if q > hi then node q (swap_go nd.v0) (swap_go nd.v1)
              else begin
                let a0, a1 = move2 ~put:0 nd.v0
                and b0, b1 = move2 ~put:1 nd.v1 in
                node q (Vec.add p a0 b0) (Vec.add p a1 b1)
              end
            in
            Cache.add kv key (r, r);
            r
        in
        Pkg.vscale p (wcx e.vw) inner
  in
  if s.Pkg.gs_swap then swap_go v else go v

(* [left = true] computes G * M; [left = false] computes M * G^dagger (the
   adjoint of the 2x2 taken entry-wise — no full [adjoint] pass). *)
let kernel_mul_sig p (s : Pkg.gate_sig) ~n ~left (m : medge) =
  let sid = s.Pkg.gs_id
  and target = s.Pkg.gs_target
  and hi = s.Pkg.gs_hi
  and lo = s.Pkg.gs_lo
  and cmin = s.Pkg.gs_cmin
  and u = s.Pkg.gs_u in
  if n <= hi then invalid_arg "Mat.mul_gate: gate exceeds the register";
  Obs.Metrics.incr m_kernel_calls;
  let km = Pkg.kernel_m_cache p in
  let node q a b c d = Pkg.make_mnode p q a b c d in
  let side = if left then 0 else 1 in
  (* coefficient lookup: result row [k] on the left combines with u_{kt};
     result column [k] on the right combines with (u^dagger)_{tk} =
     conj u_{kt} — the same entry, conjugated *)
  let coef k t = if left then u.((2 * k) + t) else Cx.conj u.((2 * k) + t) in
  let msub (e : medge) =
    if medge_is_zero e then (Pkg.mzero, Pkg.mzero, Pkg.mzero, Pkg.mzero)
    else
      match e.mt with
      | None -> invalid_arg "Mat.mul_gate: operand too shallow"
      | Some nd ->
        if Ct.is_one e.mw then (nd.m00, nd.m01, nd.m10, nd.m11)
        else begin
          let w = wcx e.mw in
          ( Pkg.mscale p w nd.m00
          , Pkg.mscale p w nd.m01
          , Pkg.mscale p w nd.m10
          , Pkg.mscale p w nd.m11 )
        end
  in
  (* controls strictly below the target; on the left [k] is the result row
     and the recursion tracks row blocks, on the right [k] is the result
     column and it tracks column blocks.  [below2 x y] produces both [k]
     slices in one descent — they recurse over the same child pairs, so
     sharing the walk halves the [msub] weight pushes and cache traffic.
     Ratio-normalized caching as in the vector kernel: only node
     identities and the interned wy/wx ratio enter the key, the leading
     weight is scaled back on afterwards. *)
  let rec below2 (x : medge) (y : medge) =
    if medge_is_zero x && medge_is_zero y then (Pkg.mzero, Pkg.mzero)
    else begin
      let lead, x, y =
        if medge_is_zero x then (wcx y.mw, x, { y with mw = Ct.one })
        else begin
          let wx = wcx x.mw in
          let ratio = Pkg.weight p (Cx.div (wcx y.mw) wx) in
          let y = if Ct.is_zero ratio then Pkg.mzero else { y with mw = ratio } in
          (wx, { x with mw = Ct.one }, y)
        end
      in
      (* [-3] marks a zero [x] — [mnode_id] cannot tell it apart from a
         weight-one terminal (both have no node) *)
      let xi = if medge_is_zero x then -3 else mnode_id x.mt in
      let opcode = if left then 2 else 3 in
      let key = ((sid lsl 4) lor opcode, xi, mnode_id y.mt, y.mw.id) in
      let r0, r1 =
        match Cache.find km key with
        | Some rs -> rs
        | None ->
          let q =
            match (x.mt, y.mt) with
            | Some nd, _ | _, Some nd -> nd.mvar
            | None, None -> -1
          in
          let r0, r1 =
            if q < cmin then
              ( add p (Pkg.mscale p (coef 0 0) x) (Pkg.mscale p (coef 0 1) y)
              , add p (Pkg.mscale p (coef 1 0) x) (Pkg.mscale p (coef 1 1) y) )
            else begin
              let x00, x01, x10, x11 = msub x
              and y00, y01, y10, y11 = msub y in
              match Pkg.sig_control_at s q with
              | None ->
                let a0, a1 = below2 x00 y00
                and b0, b1 = below2 x01 y01
                and c0, c1 = below2 x10 y10
                and d0, d1 = below2 x11 y11 in
                (node q a0 b0 c0 d0, node q a1 b1 c1 d1)
              | Some true ->
                if left then begin
                  (* unsatisfied 0-rows pass through; 1-rows continue *)
                  let c0, c1 = below2 x10 y10
                  and d0, d1 = below2 x11 y11 in
                  (node q x00 x01 c0 d0, node q y00 y01 c1 d1)
                end
                else begin
                  let b0, b1 = below2 x01 y01
                  and d0, d1 = below2 x11 y11 in
                  (node q x00 b0 x10 d0, node q y00 b1 y10 d1)
                end
              | Some false ->
                if left then begin
                  let a0, a1 = below2 x00 y00
                  and b0, b1 = below2 x01 y01 in
                  (node q a0 b0 x10 x11, node q a1 b1 y10 y11)
                end
                else begin
                  let a0, a1 = below2 x00 y00
                  and c0, c1 = below2 x10 y10 in
                  (node q a0 x01 c0 x11, node q a1 y01 c1 y11)
                end
            end
          in
          Cache.add km key (r0, r1);
          (r0, r1)
      in
      (Pkg.mscale p lead r0, Pkg.mscale p lead r1)
    end
  in
  (* diagonal gate (u01 = u10 = 0) with controls below: slice [k] of the
     result depends only on its own operand — the gate merely scales the
     fully control-satisfied blocks by [coef k k].  Single-operand,
     weight-factored recursion: no ratio interning, entries per operand
     node instead of per operand pair. *)
  let diag =
    Array.length u = 4 && Cx.is_zero ~tol:0.0 u.(1) && Cx.is_zero ~tol:0.0 u.(2)
  in
  let rec below_diag ~k (e : medge) =
    if medge_is_zero e then Pkg.mzero
    else
      match e.mt with
      | None -> Pkg.mscale p (coef k k) e
      | Some nd ->
        if nd.mvar < cmin then Pkg.mscale p (coef k k) e
        else begin
          let opcode = (if left then 8 else 10) + k in
          let key = ((sid lsl 4) lor opcode, nd.mid, -2, -2) in
          let inner =
            match Cache.find km key with
            | Some (r, _) -> r
            | None ->
              let q = nd.mvar in
              let r =
                match Pkg.sig_control_at s q with
                | None ->
                  node q (below_diag ~k nd.m00) (below_diag ~k nd.m01)
                    (below_diag ~k nd.m10) (below_diag ~k nd.m11)
                | Some true ->
                  if left then
                    node q nd.m00 nd.m01 (below_diag ~k nd.m10)
                      (below_diag ~k nd.m11)
                  else
                    node q nd.m00 (below_diag ~k nd.m01) nd.m10
                      (below_diag ~k nd.m11)
                | Some false ->
                  if left then
                    node q (below_diag ~k nd.m00) (below_diag ~k nd.m01) nd.m10
                      nd.m11
                  else
                    node q (below_diag ~k nd.m00) nd.m01 (below_diag ~k nd.m10)
                      nd.m11
              in
              Cache.add km key (r, r);
              r
          in
          Pkg.mscale p (wcx e.mw) inner
        end
  in
  let rec go (e : medge) =
    if medge_is_zero e then Pkg.mzero
    else
      match e.mt with
      | None -> invalid_arg "Mat.mul_gate: operand too shallow"
      | Some nd ->
        let key = ((sid lsl 4) lor side, nd.mid, -2, -2) in
        let inner =
          match Cache.find km key with
          | Some (r, _) -> r
          | None ->
            let q = nd.mvar in
            let r =
              if q > target then
                match Pkg.sig_control_at s q with
                | None -> node q (go nd.m00) (go nd.m01) (go nd.m10) (go nd.m11)
                | Some true ->
                  if left then node q nd.m00 nd.m01 (go nd.m10) (go nd.m11)
                  else node q nd.m00 (go nd.m01) nd.m10 (go nd.m11)
                | Some false ->
                  if left then node q (go nd.m00) (go nd.m01) nd.m10 nd.m11
                  else node q (go nd.m00) nd.m01 (go nd.m10) nd.m11
              else begin
                (* at the target: on the left combine row blocks per result
                   row, on the right combine column blocks per result
                   column *)
                let comb2 a b =
                  if cmin = max_int then
                    ( add p
                        (Pkg.mscale p (coef 0 0) a)
                        (Pkg.mscale p (coef 0 1) b)
                    , add p
                        (Pkg.mscale p (coef 1 0) a)
                        (Pkg.mscale p (coef 1 1) b) )
                  else if diag then (below_diag ~k:0 a, below_diag ~k:1 b)
                  else below2 a b
                in
                if left then begin
                  let a0, a1 = comb2 nd.m00 nd.m10
                  and b0, b1 = comb2 nd.m01 nd.m11 in
                  node q a0 b0 a1 b1
                end
                else begin
                  let a0, a1 = comb2 nd.m00 nd.m01
                  and b0, b1 = comb2 nd.m10 nd.m11 in
                  node q a0 a1 b0 b1
                end
              end
            in
            Cache.add km key (r, r);
            r
        in
        Pkg.mscale p (wcx e.mw) inner
  in
  (* native swap: SWAP * M permutes rows, M * SWAP permutes columns (SWAP
     is self-adjoint).  [move2 ~put x] extracts both rows (resp. columns)
     of [x] at the low wire and re-emits each in slot [put] — one descent
     produces both [sel] slices, cached separately per [sel] opcode. *)
  let rec move2 ~put (e : medge) =
    if medge_is_zero e then (Pkg.mzero, Pkg.mzero)
    else
      match e.mt with
      | None -> invalid_arg "Mat.mul_swap: operand too shallow"
      | Some nd ->
        let base = if left then 4 else 6 in
        let key = ((sid lsl 4) lor (base + put), nd.mid, -2, -2) in
        let r0, r1 =
          match Cache.find km key with
          | Some rs -> rs
          | None ->
            let q = nd.mvar in
            let r0, r1 =
              if q > lo then begin
                let a0, a1 = move2 ~put nd.m00
                and b0, b1 = move2 ~put nd.m01
                and c0, c1 = move2 ~put nd.m10
                and d0, d1 = move2 ~put nd.m11 in
                (node q a0 b0 c0 d0, node q a1 b1 c1 d1)
              end
              else if left then begin
                let emit c0 c1 =
                  if put = 0 then node q c0 c1 Pkg.mzero Pkg.mzero
                  else node q Pkg.mzero Pkg.mzero c0 c1
                in
                (emit nd.m00 nd.m01, emit nd.m10 nd.m11)
              end
              else begin
                let emit c0 c1 =
                  if put = 0 then node q c0 Pkg.mzero c1 Pkg.mzero
                  else node q Pkg.mzero c0 Pkg.mzero c1
                in
                (emit nd.m00 nd.m10, emit nd.m01 nd.m11)
              end
            in
            Cache.add km key (r0, r1);
            (r0, r1)
        in
        let w = wcx e.mw in
        (Pkg.mscale p w r0, Pkg.mscale p w r1)
  in
  let rec swap_go (e : medge) =
    if medge_is_zero e then Pkg.mzero
    else
      match e.mt with
      | None -> invalid_arg "Mat.mul_swap: operand too shallow"
      | Some nd ->
        let key = ((sid lsl 4) lor side, nd.mid, -2, -2) in
        let inner =
          match Cache.find km key with
          | Some (r, _) -> r
          | None ->
            let q = nd.mvar in
            let r =
              if q > hi then
                node q (swap_go nd.m00) (swap_go nd.m01) (swap_go nd.m10)
                  (swap_go nd.m11)
              else if left then begin
                let a0, a1 = move2 ~put:0 nd.m00
                and b0, b1 = move2 ~put:1 nd.m10
                and c0, c1 = move2 ~put:0 nd.m01
                and d0, d1 = move2 ~put:1 nd.m11 in
                node q (add p a0 b0) (add p c0 d0) (add p a1 b1) (add p c1 d1)
              end
              else begin
                let a0, a1 = move2 ~put:0 nd.m00
                and b0, b1 = move2 ~put:1 nd.m01
                and c0, c1 = move2 ~put:0 nd.m10
                and d0, d1 = move2 ~put:1 nd.m11 in
                node q (add p a0 b0) (add p a1 b1) (add p c0 d0) (add p c1 d1)
              end
            in
            Cache.add km key (r, r);
            r
        in
        Pkg.mscale p (wcx e.mw) inner
  in
  if s.Pkg.gs_swap then swap_go m else go m

let apply_gate p ~n ~controls ~target u v =
  let s = Pkg.gate_sig p ~controls ~target u in
  Obs.Span.with_ "apply.kernel.vec" (fun () -> kernel_apply_sig p s ~n v)

let apply_swap p ~n a b v =
  let s = Pkg.swap_sig p a b in
  Obs.Span.with_ "apply.kernel.vec" (fun () -> kernel_apply_sig p s ~n v)

let mul_gate_left p ~n ~controls ~target u m =
  let s = Pkg.gate_sig p ~controls ~target u in
  Obs.Span.with_ "apply.kernel.left" (fun () ->
    kernel_mul_sig p s ~n ~left:true m)

let mul_gate_right p ~n ~controls ~target u m =
  let s = Pkg.gate_sig p ~controls ~target u in
  Obs.Span.with_ "apply.kernel.right" (fun () ->
    kernel_mul_sig p s ~n ~left:false m)

let mul_swap_left p ~n a b m =
  let s = Pkg.swap_sig p a b in
  Obs.Span.with_ "apply.kernel.left" (fun () ->
    kernel_mul_sig p s ~n ~left:true m)

let mul_swap_right p ~n a b m =
  let s = Pkg.swap_sig p a b in
  Obs.Span.with_ "apply.kernel.right" (fun () ->
    kernel_mul_sig p s ~n ~left:false m)

let trace _p (a : medge) ~n =
  let memo : (int, Cx.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go (e : medge) levels =
    if medge_is_zero e then Cx.zero
    else begin
      match e.mt with
      | None -> wcx e.mw
      | Some node ->
        let sub =
          match Hashtbl.find_opt memo node.mid with
          | Some z -> z
          | None ->
            let z = Cx.add (go node.m00 (levels - 1)) (go node.m11 (levels - 1)) in
            Hashtbl.add memo node.mid z;
            z
        in
        Cx.mul (wcx e.mw) sub
    end
  in
  go a n

let entry _p (a : medge) ~n ~row ~col =
  let rec go (e : medge) q acc =
    if medge_is_zero e then Cx.zero
    else begin
      let acc = Cx.mul acc (wcx e.mw) in
      match e.mt with
      | None -> acc
      | Some node ->
        let i = (row lsr (q - 1)) land 1 and j = (col lsr (q - 1)) land 1 in
        let next =
          match (i, j) with
          | 0, 0 -> node.m00
          | 0, 1 -> node.m01
          | 1, 0 -> node.m10
          | _ -> node.m11
        in
        go next (q - 1) acc
    end
  in
  go a n Cx.one

let to_array p (a : medge) ~n =
  let dim = 1 lsl n in
  Array.init dim (fun row -> Array.init dim (fun col -> entry p a ~n ~row ~col))

let of_array p m =
  let dim = Array.length m in
  let rec levels k = if 1 lsl k >= dim then k else levels (k + 1) in
  let n = levels 0 in
  if 1 lsl n <> dim then invalid_arg "Mat.of_array: dimension not a power of two";
  Array.iter
    (fun row -> if Array.length row <> dim then invalid_arg "Mat.of_array: not square")
    m;
  let rec build r c len =
    if len = 1 then Pkg.mterminal p m.(r).(c)
    else begin
      let half = len / 2 in
      let rec log2 x acc = if x = 1 then acc else log2 (x / 2) (acc + 1) in
      let var = log2 len 0 - 1 in
      Pkg.make_mnode p var (build r c half)
        (build r (c + half) half)
        (build (r + half) c half)
        (build (r + half) (c + half) half)
    end
  in
  build 0 0 dim

let same_target (a : medge) (b : medge) =
  match (a.mt, b.mt) with
  | None, None -> true
  | Some na, Some nb -> na == nb
  | _ -> false

let equal p (a : medge) (b : medge) =
  same_target a b && Cx.approx_eq ~tol:(Pkg.tol p) (wcx a.mw) (wcx b.mw)

let equal_up_to_phase p (a : medge) (b : medge) =
  same_target a b
  && Float.abs (Cx.abs (wcx a.mw) -. Cx.abs (wcx b.mw)) <= Pkg.tol p

let is_identity p (a : medge) ~n ~up_to_phase =
  let id = Pkg.ident p n in
  if up_to_phase then equal_up_to_phase p a id else equal p a id

let process_fidelity p (a : medge) (b : medge) ~n =
  let prod = mul p (adjoint p a) b in
  let tr = trace p prod ~n in
  Cx.abs tr /. float_of_int (1 lsl n)

let node_count (a : medge) =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | None -> ()
    | Some n ->
      if not (Hashtbl.mem seen n.mid) then begin
        Hashtbl.add seen n.mid ();
        let follow (e : medge) = if not (medge_is_zero e) then go e.mt in
        follow n.m00;
        follow n.m01;
        follow n.m10;
        follow n.m11
      end
  in
  if not (medge_is_zero a) then go a.mt;
  Hashtbl.length seen
