(** Cache keys for verification verdicts.

    A verdict is reusable only when both circuits {e and} every input that
    can change the outcome match: the checking strategy (shot counts
    included), whether dynamic circuits are transformed or rejected, any
    explicit output permutation, the stimuli seed and the numerical
    tolerance.  All of it is folded into one hex digest so the store can
    index verdicts by a single string.

    Kernel acceleration is deliberately {e not} part of the key: kernels
    are bit-identical to the generic path (CI enforces this), so cached
    verdicts are valid either way. *)

type config =
  { strategy : string  (** canonical name, e.g. [proportional], [simulation(16)] *)
  ; transform : bool  (** dynamic circuits transformed ([true]) or rejected *)
  ; perm : int array option  (** explicit output permutation, if any *)
  ; seed : int option  (** stimuli seed for simulative strategies *)
  ; tol : float  (** DD numerical tolerance *)
  }

(** [make ~digest_a ~digest_b config] is the pair key: a hex digest over
    both circuit digests (order-sensitive — equivalence checking is
    symmetric but verdict metadata like [transformed_qubits] is not) and
    the full configuration. *)
val make : digest_a:string -> digest_b:string -> config -> string
