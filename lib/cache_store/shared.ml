module M = Obs.Metrics

type meters =
  { hits : M.counter
  ; misses : M.counter
  ; publishes : M.counter
  }

type ('k, 'v) t =
  { snap : ('k, 'v) Hashtbl.t Atomic.t
    (* the table behind [snap] is frozen: it is filled before the
       [Atomic.set] that publishes it and never mutated afterwards, so
       readers need no lock *)
  ; lock : Mutex.t
  ; meters : meters option
  }

let create ?metrics () =
  { snap = Atomic.make (Hashtbl.create 16)
  ; lock = Mutex.create ()
  ; meters =
      Option.map
        (fun p ->
          { hits = M.counter (p ^ ".hits")
          ; misses = M.counter (p ^ ".misses")
          ; publishes = M.counter (p ^ ".publishes")
          })
        metrics
  }

let find t k =
  let r = Hashtbl.find_opt (Atomic.get t.snap) k in
  (match (t.meters, r) with
   | Some m, Some _ -> M.incr m.hits
   | Some m, None -> M.incr m.misses
   | None, _ -> ());
  r

let publish t k v =
  Mutex.protect t.lock (fun () ->
      let next = Hashtbl.copy (Atomic.get t.snap) in
      Hashtbl.replace next k v;
      Atomic.set t.snap next);
  match t.meters with Some m -> M.incr m.publishes | None -> ()

let size t = Hashtbl.length (Atomic.get t.snap)

let clear t =
  Mutex.protect t.lock (fun () -> Atomic.set t.snap (Hashtbl.create 16))
