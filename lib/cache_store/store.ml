module M = Obs.Metrics
module J = Obs.Json

let m_hits = M.counter "cache.result.hits"
let m_misses = M.counter "cache.result.misses"
let m_inserts = M.counter "cache.result.inserts"
let m_bytes = M.counter "cache.result.bytes"
let m_recovered = M.counter "cache.store.recovered"
let m_dropped = M.counter "cache.store.dropped"

type entry =
  { key : string
  ; digest_a : string
  ; digest_b : string
  ; strategy : string
  ; equivalent : bool
  ; exactly_equal : bool
  ; transformed_qubits : int
  ; peak_nodes : int
  ; t_transform : float
  ; t_check : float
  }

type sink =
  { dir : string
  ; segment_bytes : int
  ; mutable seg : int  (** index of the segment currently appended to *)
  ; mutable oc : out_channel
  ; mutable written : int  (** bytes in the current segment *)
  }

type t =
  { index : (string, entry) Shared.t
  ; lock : Mutex.t  (** serializes inserts (append + publish) *)
  ; sink : sink option
  ; mutable recovered : int
  ; mutable dropped : int
  }

let schema = "qcec-cache/v1"

let entry_to_json e =
  J.Obj
    [ ("schema", J.String schema)
    ; ("key", J.String e.key)
    ; ("digest_a", J.String e.digest_a)
    ; ("digest_b", J.String e.digest_b)
    ; ("strategy", J.String e.strategy)
    ; ("equivalent", J.Bool e.equivalent)
    ; ("exactly_equal", J.Bool e.exactly_equal)
    ; ("transformed_qubits", J.Int e.transformed_qubits)
    ; ("peak_nodes", J.Int e.peak_nodes)
    ; ("t_transform", J.Float e.t_transform)
    ; ("t_check", J.Float e.t_check)
    ]

let entry_of_json j =
  let str k =
    match J.member k j with
    | Some (J.String s) -> Ok s
    | _ -> Error (Fmt.str "missing or non-string %S" k)
  in
  let boolean k =
    match J.member k j with
    | Some (J.Bool b) -> Ok b
    | _ -> Error (Fmt.str "missing or non-bool %S" k)
  in
  let int k =
    match J.member k j with
    | Some (J.Int n) -> Ok n
    | _ -> Error (Fmt.str "missing or non-int %S" k)
  in
  let num k =
    match J.member k j with
    | Some (J.Float f) -> Ok f
    | Some (J.Int n) -> Ok (float_of_int n)
    | _ -> Error (Fmt.str "missing or non-number %S" k)
  in
  let ( let* ) = Result.bind in
  let* s = str "schema" in
  if s <> schema then Error (Fmt.str "unsupported schema %S" s)
  else
    let* key = str "key" in
    let* digest_a = str "digest_a" in
    let* digest_b = str "digest_b" in
    let* strategy = str "strategy" in
    let* equivalent = boolean "equivalent" in
    let* exactly_equal = boolean "exactly_equal" in
    let* transformed_qubits = int "transformed_qubits" in
    let* peak_nodes = int "peak_nodes" in
    let* t_transform = num "t_transform" in
    let* t_check = num "t_check" in
    Ok
      { key
      ; digest_a
      ; digest_b
      ; strategy
      ; equivalent
      ; exactly_equal
      ; transformed_qubits
      ; peak_nodes
      ; t_transform
      ; t_check
      }

let seg_name i = Printf.sprintf "seg-%05d.jsonl" i

let seg_index name =
  (* seg-NNNNN.jsonl *)
  if String.length name = 15
     && String.sub name 0 4 = "seg-"
     && String.sub name 9 6 = ".jsonl"
  then int_of_string_opt (String.sub name 4 5)
  else None

let segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun n ->
         Option.map (fun i -> (i, Filename.concat dir n)) (seg_index n))
  |> List.sort compare

(* Replay one segment into [index].  A line that fails to parse — torn by
   a crash or corrupted on disk — is dropped on its own; every other line
   is kept. *)
let replay index path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let kept = ref 0 and torn = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Option.bind (J.of_string_opt line) (fun j ->
                       Result.to_option (entry_of_json j))
             with
             | Some e ->
               Shared.publish index e.key e;
               incr kept
             | None -> incr torn
         done
       with End_of_file -> ());
      (!kept, !torn))

let in_memory () =
  { index = Shared.create ()
  ; lock = Mutex.create ()
  ; sink = None
  ; recovered = 0
  ; dropped = 0
  }

let open_dir ?(segment_bytes = 8 * 1024 * 1024) dir =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      failwith (Fmt.str "%s exists and is not a directory" dir);
    let t =
      { (in_memory ()) with
        sink =
          Some { dir; segment_bytes; seg = 0; oc = stdout; written = 0 }
      }
    in
    let segs = segments dir in
    Obs.Span.with_ "cache.load" (fun () ->
        List.iter
          (fun (_, path) ->
            let kept, torn = replay t.index path in
            t.recovered <- t.recovered + kept;
            t.dropped <- t.dropped + torn)
          segs);
    M.add m_recovered t.recovered;
    M.add m_dropped t.dropped;
    let sink = Option.get t.sink in
    let seg = match List.rev segs with (i, _) :: _ -> i | [] -> 0 in
    let path = Filename.concat dir (seg_name seg) in
    sink.seg <- seg;
    (* a crash can leave the segment without its final newline; terminate
       the torn line now so the next append starts a fresh record instead
       of gluing itself to the fragment *)
    let torn =
      Sys.file_exists path
      && (let ic = open_in_bin path in
          let len = in_channel_length ic in
          let torn =
            len > 0
            &&
            (seek_in ic (len - 1);
             input_char ic <> '\n')
          in
          close_in_noerr ic;
          torn)
    in
    sink.oc <- open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path;
    if torn then (
      output_char sink.oc '\n';
      flush sink.oc);
    sink.written <- out_channel_length sink.oc;
    Ok t
  with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let rotate sink =
  close_out_noerr sink.oc;
  sink.seg <- sink.seg + 1;
  sink.oc <-
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644
      (Filename.concat sink.dir (seg_name sink.seg));
  sink.written <- 0

let insert t e =
  Mutex.protect t.lock (fun () ->
      (match t.sink with
       | None -> ()
       | Some sink ->
         if sink.written >= sink.segment_bytes then rotate sink;
         (* one whole line per record, flushed before the index publish:
            a reader never sees an entry the disk does not hold *)
         let line = J.to_string (entry_to_json e) ^ "\n" in
         output_string sink.oc line;
         flush sink.oc;
         sink.written <- sink.written + String.length line;
         M.add m_bytes (String.length line));
      Shared.publish t.index e.key e;
      M.incr m_inserts)

let lookup t key =
  match Shared.find t.index key with
  | Some e ->
    M.incr m_hits;
    Some e
  | None ->
    M.incr m_misses;
    None

let size t = Shared.size t.index
let recovered t = t.recovered
let dropped t = t.dropped
let dir t = Option.map (fun s -> s.dir) t.sink
let close t = match t.sink with None -> () | Some s -> close_out_noerr s.oc
