type config =
  { strategy : string
  ; transform : bool
  ; perm : int array option
  ; seed : int option
  ; tol : float
  }

let make ~digest_a ~digest_b cfg =
  let b = Buffer.create 160 in
  Buffer.add_string b "qcec-key/v1|";
  Buffer.add_string b digest_a;
  Buffer.add_char b '|';
  Buffer.add_string b digest_b;
  Buffer.add_string b "|s=";
  Buffer.add_string b cfg.strategy;
  Buffer.add_string b (if cfg.transform then "|t=1" else "|t=0");
  (match cfg.perm with
   | None -> Buffer.add_string b "|p="
   | Some p ->
     Buffer.add_string b "|p=";
     Array.iter (fun q -> Buffer.add_string b (string_of_int q ^ ",")) p);
  (match cfg.seed with
   | None -> Buffer.add_string b "|seed="
   | Some s -> Buffer.add_string b ("|seed=" ^ string_of_int s));
  Buffer.add_string b (Printf.sprintf "|tol=%.17g" cfg.tol);
  Digest.to_hex (Digest.string (Buffer.contents b))
