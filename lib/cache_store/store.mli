(** Persistent content-addressed verdict store.

    On disk the store is a directory of JSONL segments
    ([seg-00000.jsonl], [seg-00001.jsonl], ...), one [qcec-cache/v1]
    record per line.  Writes are whole-line appends flushed per record, so
    a crash can tear at most the final line of the newest segment;
    {!open_dir} rebuilds the in-memory index by replaying every segment
    and drops only unparsable lines (counting them under
    [cache.store.dropped]).  Segments rotate once they exceed the segment
    budget, keeping individual files bounded.

    Lookups are served from an in-memory index (a {!Shared} tier, so
    concurrent engine workers read it lock-free); inserts append to disk
    and publish to the index under a mutex.

    Metrics ([docs/OBSERVABILITY.md]): [cache.result.hits],
    [cache.result.misses], [cache.result.inserts], [cache.result.bytes],
    [cache.store.recovered], [cache.store.dropped]; segment replay runs
    under a [cache.load] span. *)

type entry =
  { key : string  (** pair key from {!Key.make} *)
  ; digest_a : string
  ; digest_b : string
  ; strategy : string
  ; equivalent : bool
  ; exactly_equal : bool
  ; transformed_qubits : int
  ; peak_nodes : int
  ; t_transform : float  (** seconds spent transforming when first computed *)
  ; t_check : float  (** seconds spent checking when first computed *)
  }

type t

(** [open_dir ?segment_bytes dir] opens (creating if needed) a store
    rooted at [dir] and replays its segments into the index.  Torn or
    corrupt lines are skipped, never fatal.  [segment_bytes] (default
    8 MiB) bounds a segment before rotation. *)
val open_dir : ?segment_bytes:int -> string -> (t, string) result

(** An index-only store that persists nothing (used by tests and as the
    engine's in-process dedupe tier when no directory is configured). *)
val in_memory : unit -> t

(** [lookup t key] consults the index; counts a hit or miss. *)
val lookup : t -> string -> entry option

(** [insert t e] appends [e] to the newest segment (when persistent) and
    publishes it to the index.  Last insert for a key wins. *)
val insert : t -> entry -> unit

(** Number of indexed entries. *)
val size : t -> int

(** Entries successfully replayed by {!open_dir} (0 for {!in_memory}). *)
val recovered : t -> int

(** Lines dropped during replay because they failed to parse. *)
val dropped : t -> int

(** The backing directory, if persistent. *)
val dir : t -> string option

(** Close the write channel (no-op for {!in_memory}).  The store must not
    be used afterwards. *)
val close : t -> unit

(** JSONL codec for one record, exposed for tests and external tooling. *)
val entry_to_json : entry -> Obs.Json.t

val entry_of_json : Obs.Json.t -> (entry, string) result
