(** Process-wide read-mostly maps with lock-free lookup.

    A shared tier holds state that many domains consult but few produce:
    hash-consed gate-signature blueprints, verdict-store indexes.  Reads
    go through a single {!Atomic.get} of an immutable snapshot — no lock,
    no contention — while publishes copy the snapshot under a mutex and
    swap it in atomically.  Values must therefore be treated as immutable
    once published: the same value may be observed concurrently from any
    number of domains.

    This complements the [Dd.Pkg] domain-ownership guard rather than
    weakening it: mutable DD state (nodes, caches, roots) stays owned by
    one domain, and only frozen, domain-agnostic data crosses through a
    shared tier.

    Publish cost is O(size) per call (copy-on-write), so this structure
    suits read-dominated workloads; it is not a general concurrent map. *)

type ('k, 'v) t

(** [create ?metrics ()] makes an empty tier.  When [metrics] is given,
    lookups and publishes are counted under [<metrics>.hits],
    [<metrics>.misses] and [<metrics>.publishes] in {!Obs.Metrics}. *)
val create : ?metrics:string -> unit -> ('k, 'v) t

(** Lock-free lookup against the current snapshot. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [publish t k v] binds [k] to [v] in a fresh snapshot (replacing any
    previous binding) and makes it visible to all domains.  Serialized by
    an internal mutex; safe to call concurrently with {!find}. *)
val publish : ('k, 'v) t -> 'k -> 'v -> unit

(** Number of bindings in the current snapshot. *)
val size : ('k, 'v) t -> int

(** Drop every binding (used by tests; publishes an empty snapshot). *)
val clear : ('k, 'v) t -> unit
