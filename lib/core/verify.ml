module Circ = Circuit.Circ

(* All reported durations use the monotonic clock: [Unix.gettimeofday] can
   jump backwards under NTP adjustment, which used to make t_trans/t_ver
   occasionally negative.  Span timing goes through the same source. *)
let now = Obs.Clock.now

exception Rejected of Analysis.Diagnostic.t

type functional_result =
  { equivalent : bool
  ; exactly_equal : bool
  ; strategy : Strategy.t
  ; t_transform : float
  ; t_check : float
  ; transformed_qubits : int
  ; peak_nodes : int
  ; cached : bool
  ; metrics : Obs.Metrics.snapshot
  }

type distribution_result =
  { distributions_equal : bool
  ; total_variation : float
  ; t_extract : float
  ; t_simulate : float
  ; dynamic_distribution : Distribution.t
  ; static_distribution : Distribution.t
  ; extraction_stats : Qsim.Extraction.stats
  ; metrics : Obs.Metrics.snapshot
  }

type approximate_result =
  { process_fidelity : float
  ; within : bool
  ; t_transform : float
  ; t_check : float
  }

(* Infer the wire correspondence from the measurements: a qubit of [g']
   measured into classical bit [b] must line up with the qubit of [g]
   measured into the same bit; unmeasured qubits are matched in ascending
   order.  This is how a checker can align a transformed dynamic circuit
   with its static counterpart without being told the permutation. *)
let measurement_alignment (g : Circ.t) (g' : Circ.t) =
  let n = g.Circ.num_qubits in
  if n <> g'.Circ.num_qubits then None
  else begin
    let mg = Circ.measurements g and mg' = Circ.measurements g' in
    let cbit_to_q = Hashtbl.create 16 in
    List.iter (fun (q, cb) -> Hashtbl.replace cbit_to_q cb q) mg;
    let perm = Array.make n (-1) in
    let used = Array.make n false in
    let ok = ref (List.length mg = List.length mg') in
    let assign q' q =
      if q < 0 || q >= n || q' < 0 || q' >= n || used.(q) || perm.(q') >= 0 then
        ok := false
      else begin
        perm.(q') <- q;
        used.(q) <- true
      end
    in
    List.iter
      (fun (q', cb) ->
        match Hashtbl.find_opt cbit_to_q cb with
        | Some q -> assign q' q
        | None -> ok := false)
      mg';
    if not !ok then None
    else begin
      (* unmeasured wires: next free target in ascending order *)
      let next = ref 0 in
      Array.iteri
        (fun q' target ->
          if target < 0 then begin
            while !next < n && used.(!next) do
              incr next
            done;
            if !next < n then begin
              perm.(q') <- !next;
              used.(!next) <- true
            end
            else ok := false
          end)
        perm;
      if !ok then Some perm else None
    end
  end

(* Pad the narrower circuit with idle wires so both act on the same
   register; the check then requires the extra wires to carry the exact
   identity, which is the natural reading of "the same functionality" for
   an implementation that simply ignores some inputs. *)
let equalize_widths g g' =
  let n = g.Circ.num_qubits and n' = g'.Circ.num_qubits in
  let pad c target =
    Circ.make ~name:c.Circ.name ~qubits:target ~cbits:c.Circ.num_cbits c.Circ.ops
  in
  if n < n' then (pad g n', g')
  else if n' < n then (g, pad g' n)
  else (g, g')

(* The static pre-flight: classify both inputs and, under [`Reject],
   refuse dynamic ones with a located QA008 *before* any transformation or
   DD package construction.  This turns what used to surface mid-run as
   [Strategy.Non_unitary] into an up-front diagnostic. *)
let preflight ~on_dynamic g g' =
  match on_dynamic with
  | `Transform -> ()
  | `Reject ->
    List.iter
      (fun c ->
        let p = Analysis.classify c in
        match
          Analysis.Classify.scheme_rejection
            ~file:c.Circ.name ~scheme:Analysis.Classify.Unitary_scheme p
        with
        | Some d -> raise (Rejected d)
        | None -> ())
      [ g; g' ]

(* The verdict cache is keyed on both circuit digests plus everything else
   that can change the outcome: strategy (shot counts included via
   {!Strategy.name}), transform-vs-reject mode, any explicit permutation,
   the stimuli seed, and the weight-interning tolerance ([Pkg.create]'s
   default — [functional] never overrides it).  [use_kernels], [dd_config]
   and the DD backend are deliberately absent: they change performance,
   never verdicts (CI enforces kernel/generic and cross-backend
   agreement), so a verdict computed under one backend is served warm
   under any other. *)
let cache_key ~strategy ~perm ~on_dynamic ~seed ~digest_a ~digest_b =
  Cache_store.Key.make ~digest_a ~digest_b
    { Cache_store.Key.strategy = Strategy.name strategy
    ; transform = (match on_dynamic with `Transform -> true | `Reject -> false)
    ; perm
    ; seed
    ; tol = 1e-10
    }

let pp_functional ppf r =
  Fmt.pf ppf
    "@[<v>functional equivalence: %s%s@,strategy: %a@,t_trans = %.4fs, t_ver = %.4fs@,\
     qubits after transform: %d, peak DD nodes: %d@]"
    (if r.equivalent then "equivalent" else "NOT equivalent")
    (if r.equivalent && not r.exactly_equal then " (up to global phase)" else "")
    Strategy.pp r.strategy r.t_transform r.t_check r.transformed_qubits r.peak_nodes

let pp_distribution ppf r =
  Fmt.pf ppf
    "@[<v>distribution equivalence: %s (TVD = %.3g)@,t_extract = %.4fs, t_sim = %.4fs@,\
     branches: %d leaves, %d branch points, %d pruned@]"
    (if r.distributions_equal then "equivalent" else "NOT equivalent")
    r.total_variation r.t_extract r.t_simulate r.extraction_stats.Qsim.Extraction.leaves
    r.extraction_stats.Qsim.Extraction.branch_points
    r.extraction_stats.Qsim.Extraction.pruned

module Make (B : Dd.Backend.S) = struct
  module Pkg = B.Pkg
  module Mat = B.Mat
  module St = Strategy.Make (B)
  module Sim = Qsim.Dd_sim.Make (B)
  module Extr = Qsim.Extraction.Make (B)

  let functional ?(strategy = Strategy.default) ?perm ?(auto_align = true)
      ?(on_dynamic = `Transform) ?dd_config ?seed ?(use_kernels = true) ?cache g g' =
    preflight ~on_dynamic g g';
    (* consult the verdict store before any transformation or DD package
       construction — a warm run allocates no DD state at all *)
    let m0 = Obs.Metrics.snapshot () in
    let hit, pending =
      match cache with
      | None -> (None, None)
      | Some store ->
        let digest_a = Circ.digest g and digest_b = Circ.digest g' in
        let key = cache_key ~strategy ~perm ~on_dynamic ~seed ~digest_a ~digest_b in
        (match Cache_store.Store.lookup store key with
         | Some e -> (Some e, None)
         | None -> (None, Some (store, key, digest_a, digest_b)))
    in
    match hit with
    | Some e ->
      { equivalent = e.Cache_store.Store.equivalent
      ; exactly_equal = e.Cache_store.Store.exactly_equal
      ; strategy
      ; t_transform = 0.0
      ; t_check = 0.0
      ; transformed_qubits = e.Cache_store.Store.transformed_qubits
      ; peak_nodes = e.Cache_store.Store.peak_nodes
      ; cached = true
      ; metrics = Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ())
      }
    | None ->
    let t0 = now () in
    let g, g' =
      Obs.Span.with_ "verify.functional.transform" (fun () ->
        let static_of c =
          match (Analysis.classify c).Analysis.Classify.kind with
          | Analysis.Classify.Dynamic -> Transform.Dynamic.transform c
          | Analysis.Classify.Unitary | Analysis.Classify.Measure_terminal -> c
        in
        let g = static_of g in
        let g' = static_of g' in
        let g, g' = equalize_widths g g' in
        let perm =
          match perm with
          | Some _ as p -> p
          | None ->
            if auto_align && Circ.measurements g <> [] then measurement_alignment g g'
            else None
        in
        let g' = match perm with None -> g' | Some perm -> Circ.remap g' ~perm in
        (g, g'))
    in
    let t1 = now () in
    let p = Pkg.create ?config:dd_config () in
    let outcome =
      Obs.Span.with_ "verify.functional.check" (fun () ->
        St.check ?seed ~use_kernels p strategy g g')
    in
    let t2 = now () in
    let r =
      { equivalent = outcome.Strategy.equivalent_up_to_phase
      ; exactly_equal = outcome.Strategy.equivalent
      ; strategy
      ; t_transform = t1 -. t0
      ; t_check = t2 -. t1
      ; transformed_qubits = g'.Circ.num_qubits
      ; peak_nodes = outcome.Strategy.peak_nodes
      ; cached = false
      ; metrics = Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ())
      }
    in
    (match pending with
     | None -> ()
     | Some (store, key, digest_a, digest_b) ->
       Cache_store.Store.insert store
         { Cache_store.Store.key
         ; digest_a
         ; digest_b
         ; strategy = Strategy.name strategy
         ; equivalent = r.equivalent
         ; exactly_equal = r.exactly_equal
         ; transformed_qubits = r.transformed_qubits
         ; peak_nodes = r.peak_nodes
         ; t_transform = r.t_transform
         ; t_check = r.t_check
         });
    r

  let distribution ?(eps = 1e-9) ?(cutoff = 1e-12) ?(domains = 1) ?dd_config
      ?(use_kernels = true) dyn static =
    let m0 = Obs.Metrics.snapshot () in
    let t0 = now () in
    let extraction =
      Obs.Span.with_ "verify.distribution.extract" (fun () ->
        Extr.run ~cutoff ~domains ~use_kernels ?dd_config dyn)
    in
    let t1 = now () in
    (* a dynamic reference is extracted as well; a static one is simulated
       once and marginalized onto its measured classical bits *)
    let static_dist, t2 =
      Obs.Span.with_ "verify.distribution.simulate" (fun () ->
        if Circ.is_dynamic static then begin
          let r = Extr.run ~cutoff ~domains ~use_kernels ?dd_config static in
          (r.Qsim.Extraction.distribution, now ())
        end
        else begin
          let p = Pkg.create ?config:dd_config () in
          let final = Sim.simulate p ~use_kernels static in
          let t2 = now () in
          ( Sim.measured_distribution p final ~n:static.Circ.num_qubits
              ~num_cbits:static.Circ.num_cbits ~measures:(Circ.measurements static)
              ~cutoff ()
          , t2 )
        end)
    in
    let tv = Distribution.total_variation extraction.Qsim.Extraction.distribution static_dist in
    { distributions_equal = tv <= eps
    ; total_variation = tv
    ; t_extract = t1 -. t0
    ; t_simulate = t2 -. t1
    ; dynamic_distribution = extraction.Qsim.Extraction.distribution
    ; static_distribution = static_dist
    ; extraction_stats = extraction.Qsim.Extraction.stats
    ; metrics = Obs.Metrics.diff ~before:m0 ~after:(Obs.Metrics.snapshot ())
    }

  let approximate ?(threshold = 1.0 -. 1e-9) ?perm ?(auto_align = true) ?dd_config
      ?(use_kernels = true) g g' =
    let t0 = now () in
    let static_of c = if Circ.is_dynamic c then Transform.Dynamic.transform c else c in
    let g = static_of g in
    let g' = static_of g' in
    let g, g' = equalize_widths g g' in
    let perm =
      match perm with
      | Some _ as p -> p
      | None ->
        if auto_align && Circ.measurements g <> [] then measurement_alignment g g'
        else None
    in
    let g' = match perm with None -> g' | Some perm -> Circ.remap g' ~perm in
    let t1 = now () in
    let p = Pkg.create ?config:dd_config () in
    let fidelity =
      Obs.Span.with_ "verify.approximate.check" (fun () ->
        (* [u] stays rooted while [u'] is built (auto-GC safepoints) *)
        Pkg.with_root_m p
          (Sim.build_unitary p ~use_kernels (Circ.strip_measurements g))
          (fun ru ->
            let u' =
              Sim.build_unitary p ~use_kernels (Circ.strip_measurements g')
            in
            Mat.process_fidelity p (Pkg.mroot_edge ru) u' ~n:g.Circ.num_qubits))
    in
    let t2 = now () in
    { process_fidelity = fidelity
    ; within = fidelity >= threshold
    ; t_transform = t1 -. t0
    ; t_check = t2 -. t1
    }
end

include Make (Dd.Classic)

(* ---------------------------------------------------------------- *)
(* Portfolio racing: first definitive verdict wins                  *)

type candidate_outcome =
  [ `Won
  | `Finished
  | `Cancelled
  | `Error of string
  ]

type candidate_report =
  { c_strategy : Strategy.t
  ; c_backend : string
  ; c_seed : int option
  ; c_outcome : candidate_outcome
  ; c_wall : float
  ; c_metrics : Obs.Metrics.snapshot
  }

type portfolio_result =
  { winner : functional_result
  ; winner_index : int
  ; winner_strategy : Strategy.t
  ; winner_definitive : bool
  ; candidates : candidate_report list
  ; races_cancelled : int
  ; t_wall : float
  }

let m_races = Obs.Metrics.counter "portfolio.races"
let m_port_cancelled = Obs.Metrics.counter "portfolio.cancelled"

(* Raised inside a losing candidate's safepoint hook the moment another
   candidate has published a verdict: the loser unwinds mid-check and its
   domain (package included) is discarded. *)
exception Lost

let pp_candidate_outcome ppf = function
  | `Won -> Fmt.string ppf "won"
  | `Finished -> Fmt.string ppf "finished (lost)"
  | `Cancelled -> Fmt.string ppf "cancelled"
  | `Error msg -> Fmt.pf ppf "error: %s" msg

(* A simulative candidate's 'all shots agree' is probabilistic, not
   definitive: state fidelity is |<a|b>|^2, so classical basis stimuli
   are deterministically blind to phase-only/diagonal discrepancies, and
   even quantum stimuli only refute with high probability.  Its
   'not equivalent', by contrast, exhibits a distinguishing stimulus. *)
let simulative = function
  | Strategy.Simulation _ | Strategy.Random_stimuli _ -> true
  | Strategy.Construction | Strategy.Sequential | Strategy.Proportional
  | Strategy.Lookahead -> false

(* Candidate [i]'s seed.  NOT [seed + i]: the manifest already derives
   sibling-job seeds as [seed + index], so a linear rule one level down
   would hand job [j]'s candidate 1 the same RNG key as job [j+1]'s
   candidate 0, correlating stimuli streams across a batch.  Mixing the
   index through a splitmix-style finalizer keeps candidate streams
   disjoint from every sibling job's, and still deterministic. *)
let candidate_seed ~seed ~candidate =
  let h = seed + ((candidate + 1) * 0x2545F4914F6CDD1D) in
  let h = h lxor (h lsr 30) in
  let h = h * 0x119DE1F3 in
  let h = h lxor (h lsr 27) in
  h land max_int

let portfolio ~candidates ?perm ?auto_align ?on_dynamic ?dd_config ?seed
    ?use_kernels ?cache ?safepoint g g' =
  if candidates = [] then invalid_arg "Verify.portfolio: no candidates";
  let t0 = now () in
  (* -1 = undecided; the first candidate whose compare-and-set lands owns
     the race.  Every other candidate observes it at its next safepoint. *)
  let winner = Atomic.make (-1) in
  let run_candidate i (strategy, backend) =
    let seed = Option.map (fun s -> candidate_seed ~seed:s ~candidate:i) seed in
    let r, wall =
      match Dd.Registry.find backend with
      | None ->
        ( Error
            (Invalid_argument
               (Fmt.str "Verify.portfolio: unknown DD backend %S" backend))
        , 0.0 )
      | Some b ->
        let module B = (val b) in
        let module V = Make (B) in
        let cname = Strategy.name strategy in
        (* the hook store is domain-local in every backend, so installing
           it here cannot disturb a sibling candidate on the same backend *)
        B.Pkg.set_safepoint_hook
          (Some
             (fun p ->
               if Atomic.get winner >= 0 then raise Lost;
               match safepoint with
               | None -> ()
               | Some f -> f ~candidate:cname ~live_nodes:(B.Pkg.live_nodes p)));
        Fun.protect
          ~finally:(fun () -> B.Pkg.set_safepoint_hook None)
          (fun () ->
            let t = now () in
            let r =
              match
                V.functional ~strategy ?perm ?auto_align ?on_dynamic ?dd_config
                  ?seed ?use_kernels ?cache g g'
              with
              | r -> Ok r
              | exception e -> Error e
            in
            (r, now () -. t))
    in
    (* publish before returning: losers must be able to observe the
       verdict while this domain is still being joined.  Only definitive
       verdicts claim the race — a simulative all-shots-pass is
       probabilistic, so it must not cancel the exact deciders (it may
       still serve as a flagged fallback if nobody else finishes). *)
    let won =
      match r with
      | Ok fr when not (simulative strategy && fr.equivalent) ->
        Atomic.compare_and_set winner (-1) i
      | Ok _ | Error _ -> false
    in
    (r, won, seed, wall, Obs.Metrics.snapshot (), Obs.Span.report ())
  in
  let joined =
    (* one domain per candidate, the first included: the race is uniform
       and the caller's domain just coordinates.  Spawning is protected: if
       [Domain.spawn] fails partway (domain exhaustion under a racing batch
       pool), the race is aborted via the winner cell — [max_int] makes the
       already-running candidates unwind at their next safepoint — and every
       spawned domain is joined before the spawn failure propagates. *)
    let spawned = ref [] in
    (try
       List.iteri
         (fun i c ->
           spawned := Domain.spawn (fun () -> run_candidate i c) :: !spawned)
         candidates
     with e ->
       ignore (Atomic.compare_and_set winner (-1) max_int);
       List.iter
         (fun d ->
           match Domain.join d with
           | (_, _, _, _, m, spans) ->
             Obs.Metrics.absorb m;
             Obs.Span.absorb spans
           | exception _ -> ())
         !spawned;
       raise e);
    List.map Domain.join (List.rev !spawned)
  in
  let t_wall = now () -. t0 in
  (* fold every candidate's DD work into this domain so per-job metric
     diffs taken by callers (the batch pool) account for the whole race *)
  List.iter
    (fun (_, _, _, _, m, spans) ->
      Obs.Metrics.absorb m;
      Obs.Span.absorb spans)
    joined;
  let decided = Atomic.get winner in
  let winner_index =
    if decided >= 0 then Some decided
    else begin
      (* no definitive verdict was published.  A simulative candidate whose
         shots all agreed is still a usable — probabilistic — 'equivalent'
         (every [Ok] here is one: an exact [Ok] or a simulative
         counterexample would have claimed the race); surface the first
         such finisher, flagged via [winner_definitive = false]. *)
      let rec first_ok i = function
        | [] -> None
        | (Ok _, _, _, _, _, _) :: _ -> Some i
        | _ :: rest -> first_ok (i + 1) rest
      in
      first_ok 0 joined
    end
  in
  let reports =
    let idx = ref (-1) in
    List.map2
      (fun (strategy, backend) (r, _, seed, wall, m, _) ->
        incr idx;
        let outcome =
          match r with
          | Ok _ when Some !idx = winner_index -> `Won
          | Ok _ -> `Finished
          | Error Lost -> `Cancelled
          | Error e -> `Error (Printexc.to_string e)
        in
        { c_strategy = strategy
        ; c_backend = backend
        ; c_seed = seed
        ; c_outcome = outcome
        ; c_wall = wall
        ; c_metrics = m
        })
      candidates joined
  in
  let races_cancelled =
    List.length (List.filter (fun c -> c.c_outcome = `Cancelled) reports)
  in
  Obs.Metrics.incr m_races;
  Obs.Metrics.add m_port_cancelled races_cancelled;
  match winner_index with
  | None ->
    (* nobody finished: every candidate failed on its own terms (timeout,
       node limit, rejection...).  Re-raise the first failure so callers
       classify the race exactly like a solo run of their lead pick. *)
    (match
       List.find_map
         (fun (r, _, _, _, _, _) ->
           match r with Error e when e <> Lost -> Some e | _ -> None)
         joined
     with
     | Some e -> raise e
     | None -> invalid_arg "Verify.portfolio: race decided with no verdict")
  | Some w ->
    let winner_result =
      match List.nth joined w with
      | Ok r, _, _, _, _, _ -> r
      | _ -> assert false
    in
    { winner = winner_result
    ; winner_index = w
    ; winner_strategy = fst (List.nth candidates w)
    ; winner_definitive = decided >= 0
    ; candidates = reports
    ; races_cancelled
    ; t_wall
    }
