let string = "1.1.0"
