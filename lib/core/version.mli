(** The one source of truth for the release version: [qcec_cli --version],
    [qcec_serve --version] and the daemon's [/v1/health] payload all read
    this value, so the three can never disagree. *)

val string : string
