(** Equivalence-checking strategies for {e unitary} circuits, in the spirit
    of QCEC [41, 4].  Dynamic circuits must first go through the Section 4
    transformation ({!Verify} drives the whole flow). *)

(** Stimuli kinds for simulative checking, mirroring QCEC's classical /
    local-quantum / global-quantum stimuli: how the random input states of
    a {!Random_stimuli} run are drawn. *)
type stimuli =
  | Basis  (** random computational basis states *)
  | Product  (** random single-qubit (product) states *)
  | Entangled  (** random stabilizer states from a short Clifford circuit *)

(** The [Qsim.Stimuli] class each CLI-facing stimuli kind draws from:
    [Basis] ↦ classical, [Product] ↦ local quantum, [Entangled] ↦ global
    quantum. *)
val stimuli_class : stimuli -> Qsim.Stimuli.kind

type t =
  | Construction
      (** build both system matrices as DDs and compare canonically *)
  | Sequential
      (** apply every gate of [g], then every inverted gate of [g'], onto
          one product — the naive order, kept as a baseline: the
          intermediate DD peaks at the full system matrix of [g] *)
  | Proportional
      (** QCEC's generic strategy: start from the identity and interleave
          gates of [g] from the left with inverted gates of [g'] from the
          right, proportionally to the gate counts, so the intermediate
          product stays close to the identity; check that the final product
          is the identity *)
  | Lookahead
      (** analysis-driven variant: a static cost profile of both op streams
          ([Analysis.Cost] — Clifford membership, entangling structure,
          cancellation pairs) schedules the alternation so the applied cost
          mass stays balanced; when the profile has no preference, the step
          falls back to evaluating {e both} candidate products and keeping
          the smaller one, with the proportional order as final tie-break.
          A window bound keeps the schedule near the proportional position,
          so a misleading profile cannot starve one side *)
  | Simulation of int
      (** simulate both circuits on that many random computational basis
          states (seeded, reproducible) and compare state fidelities *)
  | Random_stimuli of
      { kind : stimuli
      ; shots : int
      }
      (** like [Simulation] but with a choice of stimuli; [Product] and
          [Entangled] stimuli catch discrepancies a basis state can miss
          (e.g. pure phase differences on superpositions) *)

type outcome =
  { equivalent : bool
  ; equivalent_up_to_phase : bool
        (** [Construction]/[Proportional]: equality with global-phase
            freedom; [Simulation]: same as [equivalent] (fidelity is
            phase-blind) *)
  ; peak_nodes : int
        (** largest intermediate matrix/vector DD observed during the
            check (for [Construction], the sum of the two final system
            matrices), a proxy for memory behaviour *)
  }

val default : t
val name : t -> string

(** [of_string s] parses what {!name} prints (modulo the shot syntax):
    the bare strategy names, [simulation:<shots>], and
    [stimuli:<basis|product|entangled>:<shots>]. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** The strategy a portfolio candidate composed by
    [Analysis.Cost.compose_portfolio] runs as. *)
val of_candidate : Analysis.Cost.candidate -> t

(** Raised by {!check} when a circuit still contains a non-unitary
    operation ([Reset] or a classically-controlled gate); carries the
    offending operation.  Dynamic circuits must go through the Section 4
    transformation first. *)
exception Non_unitary of Circuit.Op.t

module Make (B : Dd.Backend.S) : sig
  (** [check ?seed p strategy g g'] compares two unitary circuits over the
      same number of qubits (measurements and barriers are ignored).
      [seed] perturbs the (otherwise instance-shape-derived)
      random-stimuli state of the simulative strategies, so batch runs can
      derive a distinct, reproducible stream per job from one
      manifest-level seed; it is ignored by the exact strategies.
      [use_kernels] (default [true]) routes every gate application through
      the direct kernels ([Mat.apply_gate] and friends); [false] is the
      escape hatch onto the generic build-gate-DD-then-multiply path, for
      A/B comparison.  Raises [Invalid_argument] on register mismatch and
      {!Non_unitary} on non-unitary operations. *)
  val check :
       ?seed:int
    -> ?use_kernels:bool
    -> B.pkg
    -> t
    -> Circuit.Circ.t
    -> Circuit.Circ.t
    -> outcome
end

(** {!Make}[.check] over the classic backend — the historical API. *)
val check :
     ?seed:int
  -> ?use_kernels:bool
  -> Dd.Pkg.t
  -> t
  -> Circuit.Circ.t
  -> Circuit.Circ.t
  -> outcome
