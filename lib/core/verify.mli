(** End-to-end verification flows for circuits that may contain
    non-unitaries — the two schemes of the paper, instrumented with the
    timings reported in its Table 1. *)

(** Raised by {!functional} under [~on_dynamic:`Reject] when the static
    pre-flight ({!Analysis.classify}) finds a circuit the unitary-only
    strategies cannot handle.  Carries a located QA008 diagnostic; raised
    before any transformation runs or DD package is constructed. *)
exception Rejected of Analysis.Diagnostic.t

(** {1 Scheme 1 (Section 4): full functional verification} *)

type functional_result =
  { equivalent : bool  (** up to global phase *)
  ; exactly_equal : bool  (** without phase freedom *)
  ; strategy : Strategy.t
  ; t_transform : float
        (** seconds spent transforming dynamic inputs to unitary form
            ([t_trans] in the paper's Table 1) *)
  ; t_check : float  (** seconds spent in the equivalence check ([t_ver]) *)
  ; transformed_qubits : int  (** qubits after reset elimination *)
  ; peak_nodes : int
  ; cached : bool
        (** the verdict was served from the store; [t_transform] and
            [t_check] are 0 and [transformed_qubits]/[peak_nodes] replay
            the values recorded when it was first computed *)
  ; metrics : Obs.Metrics.snapshot
        (** DD-package counters attributable to this check (counter deltas;
            peak gauges report their process-wide peak).  All zeros unless
            collection is enabled via {!Obs.Metrics.set_enabled}. *)
  }

(** {1 Scheme 2 (Section 5): fixed-input distribution equivalence} *)

type distribution_result =
  { distributions_equal : bool
  ; total_variation : float
  ; t_extract : float
        (** seconds extracting the dynamic circuit's distribution
            ([t_extract]) *)
  ; t_simulate : float
        (** seconds classically simulating the static circuit ([t_sim]) *)
  ; dynamic_distribution : Distribution.t
  ; static_distribution : Distribution.t
  ; extraction_stats : Qsim.Extraction.stats
  ; metrics : Obs.Metrics.snapshot
        (** DD-package and extraction counters attributable to this
            comparison; see {!functional_result.metrics}. *)
  }

(** {1 Approximate equivalence}

    For lossy flows (approximate synthesis, noise-aware compilation) exact
    equality is the wrong question; the process fidelity
    [|Tr(U^dagger U')| / 2^n] quantifies how close the functionalities
    are. *)

type approximate_result =
  { process_fidelity : float  (** 1 iff equal up to global phase *)
  ; within : bool  (** [process_fidelity >= threshold] *)
  ; t_transform : float
  ; t_check : float
  }

(** {1 Backend-generic flows}

    All result types above are defined outside the functor, so results
    from different backends are interchangeable (the engine relies on
    this to dispatch per job at runtime via {!Dd.Registry}). *)

module Make (B : Dd.Backend.S) : sig
  val functional :
       ?strategy:Strategy.t
    -> ?perm:int array
    -> ?auto_align:bool
    -> ?on_dynamic:[ `Transform | `Reject ]
    -> ?dd_config:Dd.Backend.config
    -> ?seed:int
    -> ?use_kernels:bool
    -> ?cache:Cache_store.Store.t
    -> Circuit.Circ.t
    -> Circuit.Circ.t
    -> functional_result

  val distribution :
       ?eps:float
    -> ?cutoff:float
    -> ?domains:int
    -> ?dd_config:Dd.Backend.config
    -> ?use_kernels:bool
    -> Circuit.Circ.t
    -> Circuit.Circ.t
    -> distribution_result

  val approximate :
       ?threshold:float
    -> ?perm:int array
    -> ?auto_align:bool
    -> ?dd_config:Dd.Backend.config
    -> ?use_kernels:bool
    -> Circuit.Circ.t
    -> Circuit.Circ.t
    -> approximate_result
end

(** [functional ?strategy ?perm g g'] checks full functional equivalence.
    Dynamic inputs are first transformed with the Section 4 scheme; [perm]
    (applied to the transformed [g']) aligns its wires with [g]'s (see
    {!Algorithms.Pair.dyn_to_static}).  When [perm] is omitted and
    [auto_align] is true (the default), the alignment is inferred from the
    measurements: qubits writing the same classical bit are identified, and
    unmeasured qubits matched in ascending order.  If the (transformed)
    circuits act on different numbers of qubits, the narrower one is padded
    with idle wires, which the check then requires to be exact identities.
    Final measurements are stripped before the unitary comparison.
    [on_dynamic] selects what happens when an input classifies as dynamic:
    [`Transform] (the default) applies the Section 4 transformation as
    before, [`Reject] raises {!Rejected} with a located diagnostic instead
    — before any DD package is constructed.
    [dd_config] bounds the DD package's operation caches and enables
    automatic compaction (see {!Dd.Pkg.config}).
    [seed] perturbs the random-stimuli stream of the simulative
    strategies (see {!Strategy.check}); batch runs derive one per job.
    [use_kernels] (default [true]) routes gate applications through the
    direct kernels; [false] falls back to the generic
    build-gate-DD-then-multiply path (see {!Strategy.check}).
    [cache], when given, short-circuits the whole check from the verdict
    store: the pair key covers both {!Circuit.Circ.digest}s plus strategy,
    transform mode, [perm], [seed] and tolerance (see [docs/CACHING.md]);
    a hit returns before any transformation or DD package construction
    with [cached = true], a miss inserts the fresh verdict after the
    check.  Pre-flight rejection still runs first, so [`Reject] raises
    identically cold and warm. *)
val functional :
     ?strategy:Strategy.t
  -> ?perm:int array
  -> ?auto_align:bool
  -> ?on_dynamic:[ `Transform | `Reject ]
  -> ?dd_config:Dd.Pkg.config
  -> ?seed:int
  -> ?use_kernels:bool
  -> ?cache:Cache_store.Store.t
  -> Circuit.Circ.t
  -> Circuit.Circ.t
  -> functional_result

(** [measurement_alignment g g'] is the inferred wire permutation for two
    measurement-terminated static circuits, or [None] when the measurement
    structures do not correspond. *)
val measurement_alignment : Circuit.Circ.t -> Circuit.Circ.t -> int array option

(** [approximate ?threshold ?perm g g'] transforms dynamic inputs like
    {!functional} and computes the process fidelity via DD construction.
    [threshold] defaults to [1. -. 1e-9]; [use_kernels] as in
    {!functional}. *)
val approximate :
     ?threshold:float
  -> ?perm:int array
  -> ?auto_align:bool
  -> ?dd_config:Dd.Pkg.config
  -> ?use_kernels:bool
  -> Circuit.Circ.t
  -> Circuit.Circ.t
  -> approximate_result

(** [distribution ?eps ?cutoff ?domains dynamic static] extracts the
    measurement-outcome distribution of [dynamic] (Section 5 scheme) and
    compares it with the distribution obtained by classically simulating
    [static] (which must not be dynamic) and marginalizing its final state
    onto its measured classical bits.  Both circuits start from |0...0>
    and must write the same classical bits.  [use_kernels] as in
    {!functional}. *)
val distribution :
     ?eps:float
  -> ?cutoff:float
  -> ?domains:int
  -> ?dd_config:Dd.Pkg.config
  -> ?use_kernels:bool
  -> Circuit.Circ.t
  -> Circuit.Circ.t
  -> distribution_result

(** {1 Portfolio racing}

    "Advanced Equivalence Checking for Quantum Circuits" (PAPERS.md)
    observes that which decider is fastest varies wildly by circuit
    family; racing a small portfolio and taking the first definitive
    verdict beats any single strategy on worst-case latency. *)

type candidate_outcome =
  [ `Won  (** produced the verdict the race returned *)
  | `Finished
      (** finished on its own terms without deciding the race: either an
          exact verdict produced after the winner's, or a simulative
          all-shots-pass (which never claims the race — see
          {!portfolio_result.winner_definitive}; on a pair an exact
          candidate refuted, a simulative [`Finished] may disagree with
          the race verdict, exactly because its stimuli were blind to the
          discrepancy) *)
  | `Cancelled  (** observed the winner at a safepoint and unwound *)
  | `Error of string  (** failed on its own terms before the race ended *)
  ]

type candidate_report =
  { c_strategy : Strategy.t
  ; c_backend : string  (** registry name of the DD backend it ran on *)
  ; c_seed : int option
        (** derived seed: {!candidate_seed} of the race seed and the
            candidate index *)
  ; c_outcome : candidate_outcome
  ; c_wall : float  (** seconds from spawn to verdict/cancellation *)
  ; c_metrics : Obs.Metrics.snapshot
        (** the candidate domain's full metric registry (the domain does
            nothing else, so this is exactly its attributable work) *)
  }

type portfolio_result =
  { winner : functional_result
  ; winner_index : int  (** position in the [candidates] argument *)
  ; winner_strategy : Strategy.t
  ; winner_definitive : bool
        (** [true] when the verdict is exact: an alternation/construction
            candidate finished, or a simulative candidate exhibited a
            distinguishing stimulus.  [false] when every surviving
            candidate was simulative and all shots agreed — the verdict is
            then probabilistic ('no discrepancy found'), and callers that
            need certainty must rerun with an exact strategy *)
  ; candidates : candidate_report list  (** one per entrant, in order *)
  ; races_cancelled : int  (** candidates stopped at a safepoint *)
  ; t_wall : float  (** wall-clock of the whole race *)
  }

(** [candidate_seed ~seed ~candidate] — the derived seed candidate
    [candidate] of a race with seed [seed] runs under.  A splitmix-style
    mix of the index rather than [seed + candidate]: the manifest already
    derives sibling-job seeds as [seed + index], so a linear rule one
    level down would make job [j]'s candidate 1 share a stimuli stream
    with job [j+1]'s candidate 0. *)
val candidate_seed : seed:int -> candidate:int -> int

(** [portfolio ~candidates g g'] races one spawned domain per candidate
    [(strategy, backend)] — each with its own DD package on its own
    registry backend — and returns the first definitive verdict.  The
    instant a candidate publishes, every other candidate observes it at
    its next safepoint ([Pkg.checkpoint]) and unwinds; per-candidate
    metrics and spans are folded into the calling domain at join, so a
    batch worker's per-job metric diff covers the whole race.

    [seed] is the {e race} seed; candidate [i] runs under
    [candidate_seed ~seed ~candidate:i], so simulative candidates draw
    distinct, reproducible stimuli streams that cannot collide with a
    sibling job's (the manifest hands jobs [seed + index]).  [safepoint]
    is invoked at every candidate safepoint (after the race-abandonment
    check) with the candidate's strategy name and live node count — the
    batch pool uses it for cancellation/deadline checks and progress.

    Exact candidate verdicts are definitive (a completed alternation or
    construction check returns equivalent or not-equivalent, never
    maybe), and so is a simulative counterexample; any of these — cache
    hits included — decides the race the moment it lands.  A simulative
    all-shots-pass is {e not} definitive (fidelity-based sampling can
    miss discrepancies, phase-only ones in particular), so it never
    claims the race: the candidate records [`Finished] and the exact
    deciders race on.  Only when no definitive verdict ever lands does
    the first such finisher become the winner, with
    [winner_definitive = false].  If {e no} candidate finishes, the
    first candidate's failure is re-raised so callers classify the race
    like a solo run.  If a candidate domain fails to spawn, the
    already-running candidates are unwound and joined before the spawn
    failure propagates.  Increments [portfolio.races] once and
    [portfolio.cancelled] per cancelled candidate.  Raises
    [Invalid_argument] on an empty candidate list. *)
val portfolio :
     candidates:(Strategy.t * string) list
  -> ?perm:int array
  -> ?auto_align:bool
  -> ?on_dynamic:[ `Transform | `Reject ]
  -> ?dd_config:Dd.Pkg.config
  -> ?seed:int
  -> ?use_kernels:bool
  -> ?cache:Cache_store.Store.t
  -> ?safepoint:(candidate:string -> live_nodes:int -> unit)
  -> Circuit.Circ.t
  -> Circuit.Circ.t
  -> portfolio_result

val pp_candidate_outcome : Format.formatter -> candidate_outcome -> unit

(** [now ()] — monotonic wall clock used for all timings (an alias of
    {!Obs.Clock.now}; readings cannot go backwards, so reported durations
    are always non-negative). *)
val now : unit -> float

val pp_functional : Format.formatter -> functional_result -> unit
val pp_distribution : Format.formatter -> distribution_result -> unit
