module Circ = Circuit.Circ
module Op = Circuit.Op

type stimuli =
  | Basis
  | Product
  | Entangled

(* The CLI-facing stimuli names predate [Qsim.Stimuli]; they map onto the
   paper's three classes one-for-one. *)
let stimuli_class = function
  | Basis -> Qsim.Stimuli.Classical
  | Product -> Qsim.Stimuli.Local_quantum
  | Entangled -> Qsim.Stimuli.Global_quantum

type t =
  | Construction
  | Sequential
  | Proportional
  | Lookahead
  | Simulation of int
  | Random_stimuli of
      { kind : stimuli
      ; shots : int
      }

type outcome =
  { equivalent : bool
  ; equivalent_up_to_phase : bool
  ; peak_nodes : int
  }

let default = Proportional

let name = function
  | Construction -> "construction"
  | Sequential -> "sequential"
  | Proportional -> "proportional"
  | Lookahead -> "lookahead"
  | Simulation k -> Fmt.str "simulation(%d)" k
  | Random_stimuli { kind; shots } ->
    let kind =
      match kind with Basis -> "basis" | Product -> "product" | Entangled -> "entangled"
    in
    Fmt.str "stimuli(%s,%d)" kind shots

let pp ppf s = Fmt.string ppf (name s)

(* Inverse of [name], used by the CLI and the batch manifest parser.
   Accepts the bare strategy names plus [simulation:<shots>] and
   [stimuli:<basis|product|entangled>:<shots>]. *)
let of_string s =
  let shots_of v =
    match int_of_string_opt v with
    | Some k when k > 0 -> Ok k
    | _ -> Error (Fmt.str "expected a positive shot count, got %S" v)
  in
  match String.split_on_char ':' s with
  | [ "construction" ] -> Ok Construction
  | [ "sequential" ] -> Ok Sequential
  | [ "proportional" ] -> Ok Proportional
  | [ "lookahead" ] -> Ok Lookahead
  | [ "simulation"; k ] -> Result.map (fun k -> Simulation k) (shots_of k)
  | [ "stimuli"; kind; k ] ->
    let kind =
      match kind with
      | "basis" -> Ok Basis
      | "product" -> Ok Product
      | "entangled" -> Ok Entangled
      | other -> Error (Fmt.str "unknown stimuli kind %S" other)
    in
    Result.bind kind (fun kind ->
      Result.map (fun shots -> Random_stimuli { kind; shots }) (shots_of k))
  | _ ->
    Error
      (Fmt.str
         "unknown strategy %S (expected construction, sequential, proportional, \
          lookahead, simulation:<shots>, or stimuli:<kind>:<shots>)"
         s)

(* Map a portfolio candidate (composed by [Analysis.Cost], which cannot
   depend on this library) onto a runnable strategy. *)
let of_candidate = function
  | Analysis.Cost.Proportional_candidate -> Proportional
  | Analysis.Cost.Lookahead_candidate -> Lookahead
  | Analysis.Cost.Classical_stimuli shots -> Random_stimuli { kind = Basis; shots }
  | Analysis.Cost.Local_stimuli shots -> Random_stimuli { kind = Product; shots }
  | Analysis.Cost.Global_stimuli shots -> Random_stimuli { kind = Entangled; shots }

exception Non_unitary of Op.t

let unitary_ops (c : Circ.t) =
  List.filter
    (function
      | Op.Apply _ | Op.Swap _ -> true
      | Op.Measure _ | Op.Barrier _ -> false
      | (Op.Reset _ | Op.Cond _) as op -> raise (Non_unitary op))
    c.Circ.ops

module Make (B : Dd.Backend.S) = struct
  module Pkg = B.Pkg
  module Vec = B.Vec
  module Mat = B.Mat
  module Sim = Qsim.Dd_sim.Make (B)

  let check_construction ~use_kernels p (g : Circ.t) (g' : Circ.t) =
    (* keep [u] rooted while [u'] is built: construction may cross auto-GC
       safepoints inside [build_unitary] *)
    Pkg.with_root_m p
      (Sim.build_unitary p ~use_kernels (Circ.strip_measurements g))
      (fun ru ->
        let u' = Sim.build_unitary p ~use_kernels (Circ.strip_measurements g') in
        let u = Pkg.mroot_edge ru in
        { equivalent = Mat.equal p u u'
        ; equivalent_up_to_phase = Mat.equal_up_to_phase p u u'
        ; peak_nodes = Mat.node_count p u + Mat.node_count p u'
        })

  (* The alternating scheme: maintain M, initially I, and aim for
     M = G'^dagger * G = I.  Gates of G multiply from the left
     (M <- U_i * M); inverted gates of G' from the right
     (M <- M * U'_j^dagger), in forward order: at the end
     M = G * G'^dagger, which is I iff G = G'. *)
  (* Identity test robust to accumulated floating drift: the running product
     of unitaries M satisfies |Tr M| <= 2^n with equality exactly when
     M = e^{i phi} I, so the canonical-pointer fast path can fall back to
     the (cheap) trace. *)
  let identity_outcome p m ~n ~peak =
    let dim = float_of_int (1 lsl n) in
    let tr = Mat.trace p m ~n in
    let exact =
      Mat.is_identity p m ~n ~up_to_phase:false
      || Cxnum.Cx.abs (Cxnum.Cx.sub tr (Cxnum.Cx.of_float dim)) <= 1e-7 *. dim
    in
    let up_to_phase =
      exact
      || Mat.is_identity p m ~n ~up_to_phase:true
      || Float.abs (Cxnum.Cx.abs tr -. dim) <= 1e-7 *. dim
    in
    { equivalent = exact
    ; equivalent_up_to_phase = up_to_phase
    ; peak_nodes = max peak (Mat.node_count p m)
    }

  let check_alternating ~take_left ~use_kernels p (g : Circ.t) (g' : Circ.t) =
    let n = g.Circ.num_qubits in
    let left = unitary_ops g and right = unitary_ops g' in
    let nl = List.length left and nr = List.length right in
    Pkg.with_root_m p (Pkg.ident p n) (fun rm ->
        let peak = ref 0 in
        let apply_left op =
          Pkg.set_mroot rm
            (Sim.mul_op_left p ~use_kernels ~n op (Pkg.mroot_edge rm));
          peak := max !peak (Mat.node_count p (Pkg.mroot_edge rm));
          Pkg.checkpoint p
        in
        let apply_right op =
          Pkg.set_mroot rm
            (Sim.mul_op_right p ~use_kernels ~n op (Pkg.mroot_edge rm));
          peak := max !peak (Mat.node_count p (Pkg.mroot_edge rm));
          Pkg.checkpoint p
        in
        (* advance the side that is proportionally behind *)
        let rec go i j left right =
          match (left, right) with
          | [], [] -> ()
          | op :: rest, [] ->
            apply_left op;
            go (i + 1) j rest []
          | [], op :: rest ->
            apply_right op;
            go i (j + 1) [] rest
          | opl :: restl, opr :: restr ->
            if take_left ~i ~j ~nl ~nr then begin
              apply_left opl;
              go (i + 1) j restl right
            end
            else begin
              apply_right opr;
              go i (j + 1) left restr
            end
        in
        go 0 0 left right;
        identity_outcome p (Pkg.mroot_edge rm) ~n ~peak:!peak)

  (* How far the cost-aware schedule may drift from the proportional
     position before it is forced back: at state (i, j) the scheduler must
     keep |i - j * nl / nr| within this many ops.  Bounds the damage of a
     misleading cost profile. *)
  let lookahead_window = 8

  (* The analysis-driven lookahead scheme.  A static per-op cost profile
     (Clifford membership, entangling structure, cancellation pairs — see
     [Analysis.Cost]) is computed for both op streams, and the scheduler
     advances whichever side keeps the *applied cost mass* balanced: the
     expensive region of one circuit is consumed against the gates of the
     other that are meant to cancel it, instead of against a count of
     cheap gates.  When the static profile has no clear preference (the
     two balances differ by less than half an average step), the scheduler
     falls back to evaluating both candidate products and keeping the
     smaller one — the classic greedy lookahead, at the price of two
     multiplications for that step — with the proportional order as the
     final tie-break.  A window bound keeps the schedule within
     [lookahead_window] ops of the proportional position either way. *)
  let check_lookahead ~use_kernels p (g : Circ.t) (g' : Circ.t) =
    let n = g.Circ.num_qubits in
    let left = unitary_ops g and right = unitary_ops g' in
    let nl = List.length left and nr = List.length right in
    let cumulative w =
      let k = Array.length w in
      let c = Array.make (k + 1) 0.0 in
      for i = 0 to k - 1 do
        c.(i + 1) <- c.(i) +. w.(i)
      done;
      c
    in
    let cuml = cumulative (Analysis.Cost.op_weights ~num_qubits:n left) in
    let cumr = cumulative (Analysis.Cost.op_weights ~num_qubits:n right) in
    let tl = Float.max cuml.(nl) epsilon_float in
    let tr = Float.max cumr.(nr) epsilon_float in
    (* half the average normalized step: below this the profile's
       preference is noise *)
    let tie_eps =
      0.25 *. ((1.0 /. float_of_int (max nl 1)) +. (1.0 /. float_of_int (max nr 1)))
    in
    let left_of op m = Sim.mul_op_left p ~use_kernels ~n op m in
    let right_of op m = Sim.mul_op_right p ~use_kernels ~n op m in
    Pkg.with_root_m p (Pkg.ident p n) (fun rm ->
        let peak = ref 0 in
        let advance next =
          Pkg.set_mroot rm next;
          peak := max !peak (Mat.node_count p next);
          Pkg.checkpoint p
        in
        let rec go i j left right =
          let m = Pkg.mroot_edge rm in
          match (left, right) with
          | [], [] -> ()
          | op :: rest, [] ->
            advance (left_of op m);
            go (i + 1) j rest []
          | [], op :: rest ->
            advance (right_of op m);
            go i (j + 1) [] rest
          | opl :: restl, opr :: restr ->
            let take_left =
              (* window guard: don't let either side run away from the
                 proportional position *)
              if i * nr - (j * nl) > lookahead_window * nr then false
              else if (j * nl) - (i * nr) > lookahead_window * nl then true
              else begin
                (* cost-mass imbalance after advancing each side *)
                let bal_l =
                  Float.abs ((cuml.(i + 1) /. tl) -. (cumr.(j) /. tr))
                and bal_r =
                  Float.abs ((cuml.(i) /. tl) -. (cumr.(j + 1) /. tr))
                in
                if Float.abs (bal_l -. bal_r) > tie_eps then bal_l < bal_r
                else begin
                  (* static tie: evaluate both candidate products (computed
                     before either is rooted; no safepoint separates them,
                     so both stay canonical) *)
                  let ml = left_of opl m and mr = right_of opr m in
                  let cl = Mat.node_count p ml and cr = Mat.node_count p mr in
                  if cl <> cr then cl < cr else i * nr <= j * nl
                end
              end
            in
            if take_left then begin
              advance (left_of opl m);
              go (i + 1) j restl right
            end
            else begin
              advance (right_of opr m);
              go i (j + 1) left restr
            end
        in
        go 0 0 left right;
        identity_outcome p (Pkg.mroot_edge rm) ~n ~peak:!peak)

  (* Materialize a stimulus description ([Qsim.Stimuli] draws it as pure
     data) as a DD state vector on this backend. *)
  let materialize p ~use_kernels ~n (s : Qsim.Stimuli.t) =
    match s with
    | Qsim.Stimuli.Basis_state bits -> Pkg.basis_state p n (fun q -> bits.(q))
    | Qsim.Stimuli.Product_state amps -> Pkg.product_state p amps
    | Qsim.Stimuli.Stabilizer_state { bits; prep } ->
      Pkg.with_root_v p (Pkg.basis_state p n (fun q -> bits.(q))) (fun r ->
          List.iter
            (fun op ->
              Pkg.set_vroot r
                (Sim.apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
              Pkg.checkpoint p)
            prep;
          Pkg.vroot_edge r)

  let random_stimulus p ~use_kernels ~kind ~n st =
    materialize p ~use_kernels ~n (Qsim.Stimuli.draw st (stimuli_class kind) ~num_qubits:n)

  let check_simulation p ?seed ~use_kernels ~kind shots (g : Circ.t) (g' : Circ.t) =
    let n = g.Circ.num_qubits in
    let ops = unitary_ops g and ops' = unitary_ops g' in
    (* deterministic by construction: the default stream depends only on
       the instance shape, and an explicit [seed] (batch runs derive one
       per job from the manifest seed, portfolio races one per candidate)
       extends rather than replaces it — see [Qsim.Stimuli.rng] *)
    let st = Qsim.Stimuli.rng ?seed ~num_qubits:n ~shots () in
    let run ops state =
      Pkg.with_root_v p state (fun r ->
          List.iter
            (fun op ->
              Pkg.set_vroot r
                (Sim.apply_op p ~use_kernels ~n (Pkg.vroot_edge r) op);
              Pkg.checkpoint p)
            ops;
          Pkg.vroot_edge r)
    in
    (* the input must stay rooted while both circuits run on it, and the
       first output while the second one is produced; roots are released
       per shot *)
    let one_shot () =
      Pkg.with_root_v p (random_stimulus p ~use_kernels ~kind ~n st) (fun rin ->
          Pkg.with_root_v p (run ops (Pkg.vroot_edge rin)) (fun rout ->
              let out' = run ops' (Pkg.vroot_edge rin) in
              let out = Pkg.vroot_edge rout in
              let fid = Vec.fidelity p out out' in
              ( Float.abs (fid -. 1.0) <= 1e-9
              , Vec.node_count p out + Vec.node_count p out' )))
    in
    let rec shoot k ok peak =
      if k = 0 || not ok then (ok, peak)
      else begin
        let ok', nodes = one_shot () in
        shoot (k - 1) (ok && ok') (max peak nodes)
      end
    in
    let ok, peak = shoot shots true 0 in
    { equivalent = ok; equivalent_up_to_phase = ok; peak_nodes = peak }

  let check ?seed ?(use_kernels = true) p strategy (g : Circ.t) (g' : Circ.t) =
    if g.Circ.num_qubits <> g'.Circ.num_qubits then
      invalid_arg "Strategy.check: circuits act on different numbers of qubits";
    match strategy with
    | Construction -> check_construction ~use_kernels p g g'
    | Sequential ->
      check_alternating
        ~take_left:(fun ~i:_ ~j:_ ~nl:_ ~nr:_ -> true)
        ~use_kernels p g g'
    | Proportional ->
      (* advance whichever side is proportionally behind *)
      check_alternating
        ~take_left:(fun ~i ~j ~nl ~nr -> i * nr <= j * nl)
        ~use_kernels p g g'
    | Lookahead -> check_lookahead ~use_kernels p g g'
    | Simulation shots -> check_simulation p ?seed ~use_kernels ~kind:Basis shots g g'
    | Random_stimuli { kind; shots } ->
      check_simulation p ?seed ~use_kernels ~kind shots g g'
end

include Make (Dd.Classic)
